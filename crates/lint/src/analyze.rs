//! `foresight-analyze`: dataflow-aware workspace static analysis.
//!
//! Three passes over the shared lexer ([`crate::scan`]) and call graph
//! ([`crate::graph`]):
//!
//! * **taint** — header-derived values (direct `ByteReader` reads in the
//!   decode-critical files) flowing into allocation sizes, unchecked
//!   size arithmetic, slice indexing, or loop bounds without a sanitizer
//!   (`checked_*`, `saturating_*`, `u64_le_capped`, `.min`/`.clamp`, or
//!   a comparison guard that returns `Err`) on the path. Tracked through
//!   same-crate calls via per-function summaries (param → sink,
//!   param → return, returns-header-derived) iterated to fixpoint.
//! * **determinism** — in the byte-producing modules (`sz`, `zfp`,
//!   `lossless`, `serve`, `cluster`): hash-map/set declarations and
//!   iteration (iteration order feeds bytes or scheduling order),
//!   wall-clock reads, unseeded RNG, and thread-identity dependence.
//! * **panic-reachability** — panicking constructs (`unwrap`, `expect`,
//!   `panic!`, `unreachable!`, arithmetic slice indexing) in functions
//!   reachable within a hop budget from the serve/cluster
//!   request-admission entry points.
//!
//! Findings carry stable fingerprints (rule + file + function +
//! whitespace-normalized snippet + occurrence index — line numbers are
//! deliberately excluded so unrelated edits do not churn the baseline),
//! can be suppressed per line with `// analyze: allow(<rule>)`, or
//! accepted wholesale into a committed baseline file. The SARIF export
//! follows the 2.1.0 result/location/partialFingerprints shape.

use crate::graph::{CallGraph, CallSite, FnInfo};
use crate::scan::{collect_rs_files, lex, mentions_word, Source, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Files that parse untrusted compressed streams; the taint pass roots
/// here. Shared understanding with `foresight-lint`'s decode rules.
pub const DECODE_CRITICAL: &[&str] = &[
    "crates/sz/src/stream.rs",
    "crates/sz/src/gpu_kernel.rs",
    "crates/sz/src/gpu_exec.rs",
    "crates/sz/src/huffman.rs",
    "crates/sz/src/lossless.rs",
    "crates/sz/src/temporal.rs",
    "crates/zfp/src/stream.rs",
    "crates/zfp/src/codec.rs",
    "crates/zfp/src/gpu_exec.rs",
    "crates/zfp/src/lift.rs",
    "crates/store/src/format.rs",
    "crates/store/src/reader.rs",
];

/// Byte-producing modules: every byte (or byte ordering) these emit must
/// be scheduling- and platform-independent, so the determinism pass
/// applies here.
pub const BYTE_PRODUCING: &[&str] = &[
    "crates/sz/src/",
    "crates/zfp/src/",
    "crates/lossless/src/",
    "crates/store/src/",
    "crates/core/src/serve.rs",
    "crates/core/src/cluster.rs",
];

/// Request-admission entry points the panic-reachability pass roots at:
/// `(file suffix, function name)`.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/core/src/serve.rs", "serve"),
    ("crates/core/src/serve.rs", "serve_serial"),
    ("crates/core/src/cluster.rs", "serve_cluster"),
    ("crates/core/src/cluster.rs", "cluster_serial"),
];

/// Default hop budget for panic-reachability.
pub const DEFAULT_HOPS: usize = 4;

/// SARIF document version emitted by [`sarif`].
pub const SARIF_VERSION: &str = "2.1.0";
/// Versioned fingerprint key under `partialFingerprints`.
pub const FINGERPRINT_KEY: &str = "foresightFingerprint/v1";
/// Baseline file format version header.
pub const BASELINE_HEADER: &str = "# foresight-analyze baseline v1";

/// Every rule the analyzer can emit, with its one-line description
/// (reused for the SARIF rule table and `--list-rules`).
pub const RULES: &[(&str, &str)] = &[
    ("taint-alloc", "header-derived value reaches an allocation size without a sanitizer"),
    ("taint-arith", "header-derived value in unchecked arithmetic feeding a length/size"),
    ("taint-index", "header-derived value used as a slice index without a sanitizer"),
    ("taint-loop", "header-derived value bounds a loop without a sanitizer"),
    ("det-hash-decl", "hash collection declared in a byte-producing module"),
    ("det-hash-iter", "iteration over a hash collection in a byte-producing module"),
    ("det-wallclock", "wall-clock read in a byte-producing module"),
    ("det-rng", "unseeded randomness in a byte-producing module"),
    ("det-thread-id", "thread-identity dependence in a byte-producing module"),
    ("panic-path", "panicking construct reachable from a request-admission entry point"),
    ("panic-index", "arithmetic slice index reachable from a request-admission entry point"),
];

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub func: String,
    pub message: String,
    pub fingerprint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} ({}) [{}] {} {{{}}}",
            self.file, self.line, self.func, self.rule, self.message, self.fingerprint
        )
    }
}

/// Analyzer options.
pub struct AnalyzeOptions {
    /// Hop budget for panic-reachability.
    pub hops: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self { hops: DEFAULT_HOPS }
    }
}

/// Patterns assembled at runtime where `foresight-lint`'s workspace-wide
/// rules would otherwise match this file's own source.
struct Pats {
    instant_now: String,
    std_instant: String,
    escape_prefix: String,
}

impl Pats {
    fn new() -> Self {
        Self {
            instant_now: ["Ins", "tant::now"].concat(),
            std_instant: ["std::time::", "Ins", "tant"].concat(),
            escape_prefix: ["// analyze: ", "allow("].concat(),
        }
    }
}

/// One prepared file: path, the raw + code line views, and tokens.
struct Prepared {
    path: String,
    raw: Vec<String>,
    code: Vec<String>,
}

fn is_decode_critical(path: &str) -> bool {
    DECODE_CRITICAL.iter().any(|s| path.ends_with(s))
}

fn is_byte_producing(path: &str) -> bool {
    BYTE_PRODUCING
        .iter()
        .any(|s| if s.ends_with(".rs") { path.ends_with(s) } else { path.contains(s) })
}

/// `// analyze: allow(<rule>)` on the finding line or the line above.
fn escaped(raw: &[String], line: usize, rule: &str, pats: &Pats) -> bool {
    let marker = format!("{}{})", pats.escape_prefix, rule);
    let i = line.saturating_sub(1);
    if raw.get(i).map(|l| l.contains(&marker)).unwrap_or(false) {
        return true;
    }
    i > 0
        && raw
            .get(i - 1)
            .map(|l| l.trim_start().starts_with("//") && l.contains(&marker))
            .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Collapses runs of whitespace so formatting churn keeps fingerprints
/// stable.
fn normalize(snippet: &str) -> String {
    snippet.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Assigns fingerprints to findings in order: hash of rule, file,
/// enclosing function, normalized snippet, and an occurrence index that
/// disambiguates textually identical findings in the same function.
fn fingerprint_all(findings: &mut [Finding], snippet_of: impl Fn(&Finding) -> String) {
    let mut occ: BTreeMap<(String, String, String, String), usize> = BTreeMap::new();
    for f in findings.iter_mut() {
        let snip = normalize(&snippet_of(f));
        let key = (f.rule.to_string(), f.file.clone(), f.func.clone(), snip.clone());
        let n = occ.entry(key).or_insert(0);
        let material = format!("{}\0{}\0{}\0{}\0{}", f.rule, f.file, f.func, snip, n);
        f.fingerprint = format!("{:016x}", fnv1a(material.as_bytes()));
        *n += 1;
    }
}

// ---------------------------------------------------------------------
// Taint pass
// ---------------------------------------------------------------------

/// Direct header-read call patterns (the `ByteReader` API). The capped
/// read `u64_le_capped` is deliberately absent: it is the sanitizer.
const READ_CALLS: &[&str] = &[".u8(", ".u16_le(", ".u32_le(", ".u64_le(", ".f32_le(", ".f64_le("];

/// Expression-level sanitizers: once one of these touches a value on a
/// line, that line's result is considered bounded.
const SANITIZERS: &[&str] =
    &["checked_", "saturating_", "u64_le_capped(", ".min(", ".clamp(", "try_into_capped("];

fn reads_header(expr: &str) -> bool {
    READ_CALLS.iter().any(|p| expr.contains(p))
}

fn sanitized(expr: &str) -> bool {
    SANITIZERS.iter().any(|p| expr.contains(p))
}

/// What a tainted parameter can reach inside a callee.
#[derive(Default, Clone)]
struct Summary {
    /// Base-run result: the return value derives from header reads.
    returns_taint: bool,
    /// Per parameter: the sink rule it reaches unsanitized, if any.
    param_to_sink: Vec<Option<&'static str>>,
    /// Per parameter: reaches the return value unsanitized.
    param_to_return: Vec<bool>,
}

/// Result of scanning one function with a given taint seeding.
struct RunResult {
    returns_taint: bool,
    /// (line, rule, message) — reported only on emitting runs.
    sinks: Vec<(usize, &'static str, String)>,
    /// Which initially-seeded params reached a sink / the return.
    seed_hit_sink: Option<&'static str>,
    seed_hit_return: bool,
}

/// Extracts the balanced-paren argument of the first occurrence of `pat`
/// (which must end in `(`) in `line`.
fn call_arg<'a>(line: &'a str, pat: &str) -> Option<&'a str> {
    let at = line.find(pat)?;
    let open = at + pat.len() - 1;
    let b = line.as_bytes();
    let mut depth = 0i64;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    Some(&line[open + 1..])
}

/// Let-binding targets: identifiers of the pattern between `let` and the
/// top-level `=`, excluding `mut`/`ref` and any type annotation.
fn let_targets(line: &str) -> Vec<String> {
    let Some(at) = line.find("let ") else { return Vec::new() };
    let rest = &line[at + 4..];
    let Some(eq) = top_level_assign(rest) else { return Vec::new() };
    let mut pat = &rest[..eq];
    // Cut a trailing `: Type` annotation (the colon sits outside any
    // parens in every let pattern Rust accepts).
    let mut depth = 0i64;
    for (i, c) in pat.char_indices() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ':' if depth == 0 => {
                pat = &pat[..i];
                break;
            }
            _ => {}
        }
    }
    idents_of(pat).into_iter().filter(|w| w != "mut" && w != "ref").collect()
}

/// Byte offset of the first top-level assignment `=` in `s` (skipping
/// `==`, `<=`, `>=`, `!=`, `=>`, and compound ops), if any.
fn top_level_assign(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'=' {
            continue;
        }
        let prev = if i > 0 { b[i - 1] } else { b' ' };
        let next = if i + 1 < b.len() { b[i + 1] } else { b' ' };
        if matches!(prev, b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
        {
            continue;
        }
        if next == b'=' || next == b'>' {
            continue;
        }
        return Some(i);
    }
    None
}

/// All identifiers in `s`, in order.
fn idents_of(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if !cur.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !cur.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        out.push(cur);
    }
    out
}

/// The taint engine over one function. `seed` optionally taints one
/// parameter (summary computation); the base run (`seed == None`) seeds
/// from direct header reads and, when `emit`, records findings.
#[allow(clippy::too_many_arguments)] // the engine genuinely threads this much context
fn scan_fn_taint(
    f: &FnInfo,
    code: &[String],
    calls: &[CallSite],
    fns: &[FnInfo],
    summaries: &[Summary],
    seed: Option<usize>,
    emit: bool,
) -> RunResult {
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    let mut seeded: BTreeSet<String> = BTreeSet::new();
    if let Some(p) = seed {
        if let Some(name) = f.params.get(p) {
            tainted.insert(name.clone(), format!("parameter `{name}`"));
            seeded.insert(name.clone());
        }
    }
    let mut res = RunResult {
        returns_taint: false,
        sinks: Vec::new(),
        seed_hit_sink: None,
        seed_hit_return: false,
    };
    let taint_in = |expr: &str, tainted: &BTreeMap<String, String>| -> Option<String> {
        if sanitized(expr) {
            return None;
        }
        if seed.is_none() && reads_header(expr) {
            return Some("a direct header read".to_string());
        }
        tainted
            .iter()
            .find(|(v, _)| mentions_word(expr, v))
            .map(|(v, o)| format!("`{v}` ({o})"))
    };
    // Two passes so taint introduced late still reaches earlier loop
    // bodies on re-entry (the engine is otherwise flow-ordered).
    for pass in 0..2 {
        let record = emit && pass == 1;
        for li in f.line..=f.end_line.min(code.len()) {
            let line = &code[li - 1];
            if line.is_empty() {
                continue;
            }
            // Guard sanitization: an `if` comparing a value and rejecting
            // with `Err` bounds every value it mentions from here on. The
            // rejection may sit on the next few lines (`if n > cap {` /
            // `    return Err(...)`).
            let cmpish = line.contains('<')
                || line.contains('>')
                || line.contains("==")
                || line.contains("!=")
                || line.contains(".is_none(")
                || line.contains(".is_err(")
                || line.contains(".is_some(");
            let rejects = line.contains("Err")
                || (li..li.saturating_add(3).min(f.end_line))
                    .any(|j| code.get(j).map(|l| l.contains("Err(")).unwrap_or(false));
            let is_guard = mentions_word(line, "if") && cmpish && rejects;
            if is_guard {
                let vars: Vec<String> = tainted
                    .keys()
                    .filter(|v| mentions_word(line, v))
                    .cloned()
                    .collect();
                for v in vars {
                    tainted.remove(&v);
                }
                continue;
            }
            // Call-derived taint and interprocedural sinks.
            let line_calls: Vec<&CallSite> = calls.iter().filter(|c| c.line == li).collect();
            let mut call_taints = false;
            for cs in &line_calls {
                for &callee in &cs.callees {
                    let s = &summaries[callee];
                    if s.returns_taint {
                        call_taints = true;
                    }
                    for (k, arg) in cs.args.iter().enumerate() {
                        // Range arguments feed `.get(a..b)`-style
                        // bounds-checked APIs; not a size/index flow.
                        if arg.contains("..") {
                            continue;
                        }
                        let Some(origin) = taint_in(arg, &tainted) else { continue };
                        if s.param_to_return.get(k).copied().unwrap_or(false) {
                            call_taints = true;
                        }
                        if let Some(rule) = s.param_to_sink.get(k).copied().flatten() {
                            if record {
                                res.sinks.push((
                                    li,
                                    rule,
                                    format!(
                                        "{origin} flows into `{}` (argument {}), which reaches a `{}` sink",
                                        fns[callee].name,
                                        k + 1,
                                        rule
                                    ),
                                ));
                            }
                            if seed.is_some() && tainted.keys().any(|v| seeded.contains(v)) {
                                res.seed_hit_sink = Some(rule);
                            }
                        }
                    }
                }
            }
            // Direct sinks.
            if record || seed.is_some() {
                let mut hit = |li: usize, rule: &'static str, origin: String, what: &str| {
                    if record {
                        res.sinks.push((li, rule, format!("{origin} {what}")));
                    }
                    if seed.is_some() {
                        res.seed_hit_sink = Some(rule);
                    }
                };
                for pat in ["with_capacity(", ".malloc("] {
                    if let Some(arg) = call_arg(line, pat) {
                        if let Some(origin) = taint_in(arg, &tainted) {
                            hit(li, "taint-alloc", origin, "sizes an allocation without a sanitizer");
                        }
                    }
                }
                if let Some(at) = line.find("vec!") {
                    let after = &line[at..];
                    if let Some(semi) = after.find(';') {
                        let len_expr =
                            after[semi + 1..].split(']').next().unwrap_or("");
                        if let Some(origin) = taint_in(len_expr, &tainted) {
                            hit(li, "taint-alloc", origin, "sizes a vec! allocation without a sanitizer");
                        }
                    }
                }
                if let Some(arg) = call_arg(line, ".take(") {
                    if (arg.contains('*') || arg.contains('+')) && !sanitized(arg) {
                        if let Some(origin) = taint_in(arg, &tainted) {
                            hit(
                                li,
                                "taint-arith",
                                origin,
                                "feeds a read length through unchecked arithmetic",
                            );
                        }
                    }
                }
                // Slice indexing `ident[expr]` (not ranges).
                let b = line.as_bytes();
                for (i, &c) in b.iter().enumerate() {
                    if c != b'['
                        || i == 0
                        || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' || b[i - 1] == b')')
                    {
                        continue;
                    }
                    let mut depth = 0i64;
                    let mut end = line.len();
                    for (j, &d) in b.iter().enumerate().skip(i) {
                        match d {
                            b'[' | b'(' => depth += 1,
                            b']' | b')' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = j;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    let inner = &line[i + 1..end.min(line.len())];
                    if inner.contains("..") || inner.contains('%') {
                        continue;
                    }
                    if let Some(origin) = taint_in(inner, &tainted) {
                        hit(li, "taint-index", origin, "indexes a slice without a sanitizer");
                    }
                }
                // Loop bounds `for .. in <lo>..<hi>`.
                if mentions_word(line, "for") && line.contains(" in ") {
                    if let Some(dots) = line.find("..") {
                        let bound =
                            line[dots + 2..].trim_start_matches('=').split('{').next().unwrap_or("");
                        if let Some(origin) = taint_in(bound, &tainted) {
                            hit(li, "taint-loop", origin, "bounds a loop without a sanitizer");
                        }
                    }
                }
            }
            // Propagation: let bindings and compound assignment.
            let targets = let_targets(line);
            if !targets.is_empty() {
                let eq = line.find("let ").and_then(|at| {
                    top_level_assign(&line[at + 4..]).map(|e| at + 4 + e)
                });
                let mut rhs = eq.map(|e| &line[e + 1..]).unwrap_or("");
                // `let x = match scrutinee {` selects a branch; the values
                // come from the arms, not the scrutinee (control
                // dependence, not value flow). Evaluate only what follows
                // the brace (one-line arms stay visible).
                if rhs.trim_start().starts_with("match ") {
                    rhs = rhs.split_once('{').map(|(_, r)| r).unwrap_or("");
                }
                let rhs_tainted =
                    taint_in(rhs, &tainted).is_some() || (call_taints && !sanitized(rhs));
                let carries_seed = seeded.iter().any(|v| mentions_word(rhs, v)) && !sanitized(rhs);
                for t in &targets {
                    if rhs_tainted {
                        tainted.insert(t.clone(), format!("derived at line {li}"));
                        if carries_seed {
                            seeded.insert(t.clone());
                        }
                    } else {
                        tainted.remove(t);
                        seeded.remove(t);
                    }
                }
            } else if let Some(at) = line.find("+=").or_else(|| line.find("*=")) {
                let lhs_ident = idents_of(&line[..at]).into_iter().next_back();
                let rhs = &line[at + 2..];
                if let Some(v) = lhs_ident {
                    if taint_in(rhs, &tainted).is_some() {
                        tainted.insert(v.clone(), format!("accumulated at line {li}"));
                    }
                }
            }
            // Return-value taint (over-approximate: any return-shaped
            // line mentioning taint). `Err(` lines are guard rejections,
            // not value flow — a corrupt-header error message quoting the
            // bad value does not taint the Ok path.
            if (mentions_word(line, "return") || line.contains("Ok(") || line.contains("Some("))
                && !line.contains("Err(")
                && taint_in(line, &tainted).is_some()
            {
                res.returns_taint = seed.is_none();
                if seed.is_some() && tainted.keys().any(|v| seeded.contains(v)) {
                    res.seed_hit_return = true;
                }
            }
        }
    }
    res
}

/// Computes per-function taint summaries to fixpoint.
fn compute_summaries(g: &CallGraph, prepared: &[Prepared]) -> Vec<Summary> {
    let mut summaries: Vec<Summary> = g
        .fns
        .iter()
        .map(|f| Summary {
            returns_taint: false,
            param_to_sink: vec![None; f.params.len()],
            param_to_return: vec![false; f.params.len()],
        })
        .collect();
    for _round in 0..3 {
        let mut changed = false;
        for (fi, f) in g.fns.iter().enumerate() {
            if f.body.is_none() {
                continue;
            }
            let code = &prepared[f.file].code;
            let base = scan_fn_taint(f, code, &g.calls[fi], &g.fns, &summaries, None, false);
            if base.returns_taint && !summaries[fi].returns_taint {
                summaries[fi].returns_taint = true;
                changed = true;
            }
            for p in 0..f.params.len() {
                let r = scan_fn_taint(f, code, &g.calls[fi], &g.fns, &summaries, Some(p), false);
                if let Some(rule) = r.seed_hit_sink {
                    if summaries[fi].param_to_sink[p].is_none() {
                        summaries[fi].param_to_sink[p] = Some(rule);
                        changed = true;
                    }
                }
                if r.seed_hit_return && !summaries[fi].param_to_return[p] {
                    summaries[fi].param_to_return[p] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

// ---------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------

fn taint_pass(g: &CallGraph, prepared: &[Prepared], pats: &Pats, out: &mut Vec<Finding>) {
    let summaries = compute_summaries(g, prepared);
    for (fi, f) in g.fns.iter().enumerate() {
        let file = &prepared[f.file];
        if !is_decode_critical(&file.path) || f.body.is_none() {
            continue;
        }
        let r = scan_fn_taint(f, &file.code, &g.calls[fi], &g.fns, &summaries, None, true);
        for (line, rule, message) in r.sinks {
            if escaped(&file.raw, line, rule, pats) {
                continue;
            }
            out.push(Finding {
                rule,
                file: file.path.clone(),
                line,
                func: f.name.clone(),
                message,
                fingerprint: String::new(),
            });
        }
    }
}

fn determinism_pass(prepared: &[Prepared], pats: &Pats, out: &mut Vec<Finding>, g: &CallGraph) {
    for file in prepared {
        if !is_byte_producing(&file.path) {
            continue;
        }
        let mut hash_vars: BTreeSet<String> = BTreeSet::new();
        for (i, line) in file.code.iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            let li = i + 1;
            let func = enclosing_fn(g, prepared, file, li);
            let mut push = |rule: &'static str, message: String| {
                if !escaped(&file.raw, li, rule, pats) {
                    out.push(Finding {
                        rule,
                        file: file.path.clone(),
                        line: li,
                        func: func.clone(),
                        message,
                        fingerprint: String::new(),
                    });
                }
            };
            let has_hash = mentions_word(line, "HashMap") || mentions_word(line, "HashSet");
            if has_hash {
                push(
                    "det-hash-decl",
                    "hash collection in a byte-producing module: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or a dense table"
                        .into(),
                );
                for t in let_targets(line) {
                    hash_vars.insert(t);
                }
            }
            for v in &hash_vars {
                let iterates = [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"]
                    .iter()
                    .any(|m| line.contains(&format!("{v}{m}")))
                    || (mentions_word(line, "for")
                        && (line.contains(&format!("in {v}")) || line.contains(&format!("in &{v}"))));
                if iterates && !has_hash {
                    push(
                        "det-hash-iter",
                        format!("iteration over hash collection `{v}` feeds byte-producing code"),
                    );
                }
            }
            if mentions_word(line, "SystemTime")
                || line.contains(pats.instant_now.as_str())
                || line.contains(pats.std_instant.as_str())
            {
                push("det-wallclock", "wall-clock read in a byte-producing module".into());
            }
            if line.contains("thread_rng")
                || line.contains("from_entropy")
                || mentions_word(line, "OsRng")
                || line.contains("rand::random")
            {
                push("det-rng", "unseeded randomness in a byte-producing module".into());
            }
            if line.contains("current_thread_index")
                || mentions_word(line, "ThreadId")
                || (line.contains("thread::current") && line.contains(".id"))
            {
                push("det-thread-id", "thread-identity dependence in a byte-producing module".into());
            }
        }
    }
}

/// Name of the function whose span contains `line` in `file`, or `-`.
fn enclosing_fn(g: &CallGraph, prepared: &[Prepared], file: &Prepared, line: usize) -> String {
    let fidx = prepared.iter().position(|p| std::ptr::eq(p, file));
    g.fns
        .iter()
        .filter(|f| Some(f.file) == fidx && f.line <= line && line <= f.end_line)
        .min_by_key(|f| f.end_line - f.line)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| "-".to_string())
}

const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!(", "panic!"),
    ("unreachable!(", "unreachable!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

fn panic_pass(
    g: &CallGraph,
    tokfiles: &[(String, Vec<Token>)],
    prepared: &[Prepared],
    pats: &Pats,
    hops: usize,
    out: &mut Vec<Finding>,
) {
    // Union of reachable functions over all entry points, keeping the
    // shortest hop count and its call path.
    let mut reach: BTreeMap<usize, (usize, Vec<String>)> = BTreeMap::new();
    for (suffix, name) in ENTRY_POINTS {
        let Some(entry) = g.find(tokfiles, suffix, name) else { continue };
        for (fi, h, path) in g.reachable(entry, hops) {
            let better = reach.get(&fi).map(|(oh, _)| h < *oh).unwrap_or(true);
            if better {
                reach.insert(fi, (h, path));
            }
        }
    }
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for (&fi, (h, path)) in &reach {
        let f = &g.fns[fi];
        let file = &prepared[f.file];
        if f.body.is_none() {
            continue;
        }
        let via = if *h == 0 {
            "a request-admission entry point".to_string()
        } else {
            format!("{} ({} hop(s))", path.join(" -> "), h)
        };
        for li in f.line..=f.end_line.min(file.code.len()) {
            let line = &file.code[li - 1];
            if line.is_empty() {
                continue;
            }
            for (pat, what) in PANIC_TOKENS {
                if line.contains(pat)
                    && !escaped(&file.raw, li, "panic-path", pats)
                    && seen.insert((file.path.clone(), li, "panic-path"))
                {
                    out.push(Finding {
                        rule: "panic-path",
                        file: file.path.clone(),
                        line: li,
                        func: f.name.clone(),
                        message: format!("`{what}` reachable from {via}"),
                        fingerprint: String::new(),
                    });
                }
            }
            // Arithmetic slice indexing (`buf[a + b]`); ranges excluded.
            let b = line.as_bytes();
            for (i, &c) in b.iter().enumerate() {
                if c != b'['
                    || i == 0
                    || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' || b[i - 1] == b')')
                {
                    continue;
                }
                let mut depth = 0i64;
                let mut end = line.len();
                for (j, &d) in b.iter().enumerate().skip(i) {
                    match d {
                        b'[' | b'(' => depth += 1,
                        b']' | b')' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                // Leading `*`/`&` are deref/borrow sigils, not operators,
                // and `%` bounds the result; neither makes an index
                // "arithmetic".
                let inner =
                    line[i + 1..end.min(line.len())].trim_start_matches(['*', '&', ' ']);
                if inner.contains("..")
                    || inner.contains('%')
                    || !(inner.contains('+') || inner.contains('*'))
                {
                    continue;
                }
                if !escaped(&file.raw, li, "panic-index", pats)
                    && seen.insert((file.path.clone(), li, "panic-index"))
                {
                    out.push(Finding {
                        rule: "panic-index",
                        file: file.path.clone(),
                        line: li,
                        func: f.name.clone(),
                        message: format!("arithmetic slice index `[{}]` reachable from {via}", inner.trim()),
                        fingerprint: String::new(),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Analyzes an in-memory file set (`(workspace-relative path, text)`),
/// returning fingerprinted findings in deterministic order.
pub fn analyze_files(files: &[(String, String)], opts: &AnalyzeOptions) -> Vec<Finding> {
    let pats = Pats::new();
    let mut prepared = Vec::with_capacity(files.len());
    let mut tokfiles = Vec::with_capacity(files.len());
    for (path, text) in files {
        let src = Source::new(path, text);
        let toks = lex(&src);
        prepared.push(Prepared {
            path: path.clone(),
            raw: src.raw.iter().map(|s| s.to_string()).collect(),
            code: src.code.clone(),
        });
        tokfiles.push((path.clone(), toks));
    }
    let g = CallGraph::build(&tokfiles);
    let mut findings = Vec::new();
    taint_pass(&g, &prepared, &pats, &mut findings);
    determinism_pass(&prepared, &pats, &mut findings, &g);
    panic_pass(&g, &tokfiles, &prepared, &pats, opts.hops, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    let by_path: BTreeMap<String, usize> =
        prepared.iter().enumerate().map(|(i, p)| (p.path.clone(), i)).collect();
    fingerprint_all(&mut findings, |f| {
        by_path
            .get(&f.file)
            .and_then(|&i| prepared[i].code.get(f.line.saturating_sub(1)))
            .cloned()
            .unwrap_or_default()
    });
    findings
}

/// Walks `root` and analyzes every workspace source file.
pub fn analyze_root(root: &Path, opts: &AnalyzeOptions) -> std::io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = std::fs::read_to_string(p)?;
        let rel = p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
        files.push((rel, text));
    }
    Ok(analyze_files(&files, opts))
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// Parses a baseline file: fingerprints with optional trailing notes.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .map(|s| s.to_string())
        .collect()
}

/// Renders findings as a baseline file.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(BASELINE_HEADER);
    out.push_str("\n# <fingerprint> <rule> <file>:<line> <message>\n");
    for f in findings {
        out.push_str(&format!(
            "{} {} {}:{} {}\n",
            f.fingerprint,
            f.rule,
            f.file,
            f.line,
            normalize(&f.message)
        ));
    }
    out
}

// ---------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document (single run, rule table,
/// one result per finding with a versioned partial fingerprint).
pub fn sarif(findings: &[Finding]) -> String {
    let mut rules = String::new();
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            json_escape(id),
            json_escape(desc)
        ));
    }
    let mut results = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}],\
             \"partialFingerprints\":{{\"{}\":\"{}\"}}}}",
            json_escape(f.rule),
            json_escape(&format!("{} (in `{}`)", f.message, f.func)),
            json_escape(&f.file),
            f.line,
            FINGERPRINT_KEY,
            json_escape(&f.fingerprint)
        ));
    }
    format!(
        "{{\"version\":\"{SARIF_VERSION}\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"foresight-analyze\",\
         \"version\":\"1\",\"rules\":[{rules}]}}}},\"results\":[{results}]}}]}}"
    )
}

// ---------------------------------------------------------------------
// CLI driver (shared by the bin and `foresight-cli analyze`)
// ---------------------------------------------------------------------

const USAGE: &str = "usage: foresight-analyze [workspace-root] [--deny-new] [--bless] \
[--baseline PATH] [--sarif PATH] [--hops N] [--quiet] [--list-rules]\n\
exit codes: 0 clean (no unbaselined findings), 1 new findings, 2 usage/IO error";

/// Parsed CLI request.
struct CliArgs {
    root: PathBuf,
    baseline: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    deny_new: bool,
    bless: bool,
    quiet: bool,
    hops: usize,
}

fn parse_cli(args: &[String]) -> Result<Option<CliArgs>, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline = None;
    let mut sarif_out = None;
    let (mut deny_new, mut bless, mut quiet) = (false, false, false);
    let mut hops = DEFAULT_HOPS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-new" => deny_new = true,
            "--bless" => bless = true,
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id:<14} {desc}");
                }
                return Ok(None);
            }
            "--baseline" => {
                baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?.clone()));
            }
            "--sarif" => {
                sarif_out = Some(PathBuf::from(it.next().ok_or("--sarif needs a path")?.clone()));
            }
            "--hops" => {
                hops = it
                    .next()
                    .ok_or("--hops needs a number")?
                    .parse()
                    .map_err(|_| "--hops needs a number".to_string())?;
            }
            s if s.starts_with('-') => return Err(format!("unknown flag {s}")),
            _ if root.is_some() => return Err("more than one root given".to_string()),
            _ => root = Some(PathBuf::from(a)),
        }
    }
    Ok(Some(CliArgs {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        baseline,
        sarif_out,
        deny_new,
        bless,
        quiet,
        hops,
    }))
}

/// Runs the analyzer CLI; returns the process exit code. Shared verbatim
/// by `foresight-analyze` and `foresight-cli analyze` so the two always
/// agree.
pub fn run_cli(args: &[String]) -> i32 {
    let parsed = match parse_cli(args) {
        Ok(Some(p)) => p,
        Ok(None) => return 0,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 2;
        }
    };
    let opts = AnalyzeOptions { hops: parsed.hops };
    let findings = match analyze_root(&parsed.root, &opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot analyze '{}': {e}", parsed.root.display());
            return 2;
        }
    };
    let baseline_path =
        parsed.baseline.unwrap_or_else(|| parsed.root.join("analyze-baseline.txt"));
    if parsed.bless {
        if let Err(e) = std::fs::write(&baseline_path, render_baseline(&findings)) {
            eprintln!("error: cannot write baseline '{}': {e}", baseline_path.display());
            return 2;
        }
        println!(
            "foresight-analyze: blessed {} finding(s) into {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }
    let known = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => parse_baseline(&t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => {
            eprintln!("error: cannot read baseline '{}': {e}", baseline_path.display());
            return 2;
        }
    };
    let (new, old): (Vec<&Finding>, Vec<&Finding>) =
        findings.iter().partition(|f| !known.contains(&f.fingerprint));
    let matched: BTreeSet<&String> = findings.iter().map(|f| &f.fingerprint).collect();
    let stale = known.iter().filter(|k| !matched.contains(k)).count();
    if let Some(p) = &parsed.sarif_out {
        if let Err(e) = std::fs::write(p, sarif(&findings)) {
            eprintln!("error: cannot write SARIF '{}': {e}", p.display());
            return 2;
        }
        if !parsed.quiet {
            println!("sarif report: {}", p.display());
        }
    }
    if !parsed.quiet {
        let shown: Vec<&&Finding> = if parsed.deny_new {
            new.iter().collect()
        } else {
            new.iter().chain(old.iter()).collect()
        };
        let mut by_rule: BTreeMap<&str, Vec<&&Finding>> = BTreeMap::new();
        for f in shown {
            by_rule.entry(f.rule).or_default().push(f);
        }
        for (rule, fs) in &by_rule {
            println!("== {rule} ==");
            for f in fs {
                let tag = if known.contains(&f.fingerprint) { " (baselined)" } else { " (NEW)" };
                println!("  {f}{tag}");
            }
        }
    }
    println!(
        "foresight-analyze: {} finding(s) ({} new, {} baselined, {} stale baseline entr{})",
        findings.len(),
        new.len(),
        old.len(),
        stale,
        if stale == 1 { "y" } else { "ies" }
    );
    if new.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, t)| (p.to_string(), t.to_string())).collect();
        analyze_files(&owned, &AnalyzeOptions::default())
    }

    #[test]
    fn direct_taint_to_alloc_is_flagged_and_sanitizer_clears_it() {
        let bad = "fn d(stream: &[u8]) -> Result<()> {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le()? as usize;\nlet v: Vec<u8> = Vec::with_capacity(n);\nOk(())\n}";
        let f = run(&[("crates/sz/src/stream.rs", bad)]);
        assert!(f.iter().any(|f| f.rule == "taint-alloc"), "{f:?}");
        let good = bad.replace("with_capacity(n)", "with_capacity(n.min(1024))");
        let f = run(&[("crates/sz/src/stream.rs", &good)]);
        assert!(!f.iter().any(|f| f.rule == "taint-alloc"), "{f:?}");
    }

    #[test]
    fn guard_returning_err_sanitizes() {
        let src = "fn d(stream: &[u8]) -> Result<()> {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le()? as usize;\nif n > MAX { return Err(Error::corrupt(\"too big\")); }\nlet v: Vec<u8> = Vec::with_capacity(n);\nOk(())\n}";
        let f = run(&[("crates/sz/src/stream.rs", src)]);
        assert!(!f.iter().any(|f| f.rule == "taint-alloc"), "{f:?}");
    }

    #[test]
    fn interprocedural_taint_reaches_callee_sink() {
        let src = "fn alloc_for(count: usize) -> Vec<u8> {\nVec::with_capacity(count)\n}\nfn d(stream: &[u8]) -> Result<()> {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le()? as usize;\nlet v = alloc_for(n);\nOk(())\n}";
        let f = run(&[("crates/sz/src/stream.rs", src)]);
        let hit = f.iter().find(|f| f.rule == "taint-alloc").expect("interproc finding");
        assert!(hit.message.contains("alloc_for"), "{hit:?}");
        assert_eq!(hit.func, "d");
    }

    #[test]
    fn determinism_pass_flags_hash_and_clean_btree_passes() {
        let bad = "fn h(xs: &[u32]) {\nlet mut m = std::collections::HashMap::new();\nfor &x in xs { m.insert(x, 1); }\nlet v: Vec<_> = m.into_iter().collect();\ndrop(v);\n}";
        let f = run(&[("crates/sz/src/huffman.rs", bad)]);
        assert!(f.iter().any(|f| f.rule == "det-hash-decl"), "{f:?}");
        assert!(f.iter().any(|f| f.rule == "det-hash-iter"), "{f:?}");
        let good = bad.replace("HashMap", "BTreeMap");
        let f = run(&[("crates/sz/src/huffman.rs", &good)]);
        assert!(f.iter().all(|f| !f.rule.starts_with("det-hash")), "{f:?}");
    }

    #[test]
    fn panic_reachability_respects_hops() {
        let src = "pub fn serve(reqs: &[u8]) {\nstep1(reqs);\n}\nfn step1(reqs: &[u8]) {\nlet x = reqs.first().unwrap();\ndrop(x);\n}";
        let f = run(&[("crates/core/src/serve.rs", src)]);
        let hit = f.iter().find(|f| f.rule == "panic-path").expect("panic finding");
        assert!(hit.message.contains("serve -> step1"), "{hit:?}");
        // The same panic beyond the hop budget is not reported.
        let owned = vec![("crates/core/src/serve.rs".to_string(), src.to_string())];
        let f = analyze_files(&owned, &AnalyzeOptions { hops: 0 });
        assert!(!f.iter().any(|f| f.rule == "panic-path"), "{f:?}");
    }

    #[test]
    fn escapes_suppress_findings() {
        let src = "fn d(stream: &[u8]) -> Result<()> {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le()? as usize;\n// analyze: allow(taint-alloc) bounded by the caller\nlet v: Vec<u8> = Vec::with_capacity(n);\nOk(())\n}";
        let f = run(&[("crates/sz/src/stream.rs", src)]);
        assert!(!f.iter().any(|f| f.rule == "taint-alloc"), "{f:?}");
    }

    #[test]
    fn fingerprints_are_stable_across_line_shifts() {
        let a = "fn d(stream: &[u8]) {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le().unwrap_or(0) as usize;\nlet v: Vec<u8> = Vec::with_capacity(n);\ndrop(v);\n}";
        let b = format!("\n\n{a}");
        let fa = run(&[("crates/sz/src/stream.rs", a)]);
        let fb = run(&[("crates/sz/src/stream.rs", &b)]);
        let pa: Vec<&String> = fa.iter().map(|f| &f.fingerprint).collect();
        let pb: Vec<&String> = fb.iter().map(|f| &f.fingerprint).collect();
        assert!(!pa.is_empty());
        assert_eq!(pa, pb);
    }

    #[test]
    fn baseline_round_trips() {
        let src = "fn d(stream: &[u8]) {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le().unwrap_or(0) as usize;\nlet v: Vec<u8> = Vec::with_capacity(n);\ndrop(v);\n}";
        let f = run(&[("crates/sz/src/stream.rs", src)]);
        assert!(!f.is_empty());
        let rendered = render_baseline(&f);
        let known = parse_baseline(&rendered);
        assert!(f.iter().all(|x| known.contains(&x.fingerprint)));
    }

    #[test]
    fn sarif_has_version_rules_and_fingerprints() {
        let src = "fn d(stream: &[u8]) {\nlet mut r = ByteReader::new(stream);\nlet n = r.u32_le().unwrap_or(0) as usize;\nlet v: Vec<u8> = Vec::with_capacity(n);\ndrop(v);\n}";
        let f = run(&[("crates/sz/src/stream.rs", src)]);
        let doc = sarif(&f);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("foresight-analyze"));
        assert!(doc.contains(FINGERPRINT_KEY));
        assert!(doc.contains(&f[0].fingerprint));
        assert!(doc.contains("taint-alloc"));
    }
}
