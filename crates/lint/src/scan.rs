//! Shared source scanning: the line view both bins agree on (comment
//! stripping, `#[cfg(test)]` truncation, escape comments, skip dirs) and
//! the token lexer the dataflow passes are built on.
//!
//! `foresight-lint` predates this module; its behavior is pinned by its
//! unit tests and by before/after output parity on the tree that hosted
//! the refactor, so everything here keeps the exact semantics the linter
//! always had. `foresight-analyze` layers a token stream on top of the
//! same line view, which is what makes the two bins agree about what is
//! code and what is comment/test scaffolding.

use std::path::{Path, PathBuf};

/// Directories never scanned. `tests`/`benches` hold integration tests
/// and harnesses — test code, excluded for the same reason inline
/// `#[cfg(test)]` modules are stripped.
pub const SKIP_DIRS: &[&str] = &["target", "shims", ".git", "results", "tests", "benches"];

/// Strips a trailing `//` comment, tracking string/char state so `//`
/// inside a string literal does not truncate the line.
pub fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char inside a string
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// True when `hay` uses `kw` as a keyword: not part of a longer
/// identifier, and followed by whitespace, `{`, or end of line (the only
/// shapes Rust's `unsafe` keyword takes), so `"<kw>-policy"` string
/// literals and `<kw>_code` attribute names do not match.
pub fn contains_keyword(hay: &str, kw: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(kw) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        let end = at + kw.len();
        let after_ok = matches!(hay[end..].chars().next(), None | Some(' ') | Some('\t') | Some('{'));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when `hay` mentions `word` with identifier boundaries on both
/// sides (unlike [`contains_keyword`], any non-ident char may follow).
pub fn mentions_word(hay: &str, word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    let mut from = 0;
    while let Some(rel) = hay[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        let end = at + word.len();
        let after_ok = !hay[end..]
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Extracts the first `"..."` literal from a line, if any.
pub fn first_string_literal(line: &str) -> Option<&str> {
    let start = line.find('"')?;
    let rest = &line[start + 1..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// One source file pre-processed for scanning: raw lines plus the
/// comment-stripped "code" view, truncated at `#[cfg(test)]`.
pub struct Source<'a> {
    pub path: &'a str,
    pub raw: Vec<&'a str>,
    pub code: Vec<String>,
}

impl<'a> Source<'a> {
    pub fn new(path: &'a str, text: &'a str) -> Self {
        let mut raw = Vec::new();
        let mut code = Vec::new();
        let mut in_tests = false;
        for line in text.lines() {
            raw.push(line);
            let trimmed = line.trim();
            if trimmed == "#[cfg(test)]" {
                in_tests = true;
            }
            if in_tests || trimmed.starts_with("//") {
                code.push(String::new());
            } else {
                code.push(strip_comment(line).to_string());
            }
        }
        Self { path, raw, code }
    }

    /// True when line `i` (0-based) carries an escape comment of the form
    /// `<prefix><rule>)`, either on the line itself or the line directly
    /// above. The linter's prefix is `// lint: allow(`, the analyzer's is
    /// `// analyze: allow(`; both are assembled at runtime by the caller
    /// so neither bin's source matches its own escapes.
    pub fn escaped(&self, i: usize, rule: &str, prefix: &str) -> bool {
        let marker = format!("{prefix}{rule})");
        if self.raw[i].contains(&marker) {
            return true;
        }
        i > 0 && self.raw[i - 1].trim_start().starts_with("//") && self.raw[i - 1].contains(&marker)
    }
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`]
/// and dot-directories.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Token kinds the lexer distinguishes. The analyzer only needs enough
/// structure to find items, calls, and argument lists; literals keep
/// their text so patterns can still look inside them when a rule wants
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Str,
    Life,
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    pub kind: TokKind,
    pub line: usize,
}

impl Token {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Lexes the code view of `src` into a token stream. Works on the same
/// comment-stripped, test-truncated lines the line rules see, so both
/// bins agree about what is code. Block comments (`/* .. */`, nested)
/// are additionally stripped here; unterminated strings close at end of
/// line (robustness over precision — this is a heuristic analyzer, not a
/// compiler front end).
pub fn lex(src: &Source) -> Vec<Token> {
    let mut toks = Vec::new();
    let mut block_depth = 0usize; // /* */ nesting carried across lines
    for (li, line) in src.code.iter().enumerate() {
        let b = line.as_bytes();
        let n = b.len();
        let mut i = 0;
        let lineno = li + 1;
        while i < n {
            let c = b[i];
            if block_depth > 0 {
                if c == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    block_depth -= 1;
                    i += 2;
                } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
                block_depth += 1;
                i += 2;
                continue;
            }
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &line[start..i];
                // Raw string literal `r"..."` / `r#"..."#`.
                if (word == "r" || word == "br") && i < n && (b[i] == b'"' || b[i] == b'#') {
                    let mut hashes = 0;
                    while i < n && b[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == b'"' {
                        i += 1;
                        let s = i;
                        let close: String =
                            std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                        let end = line[i..].find(&close).map(|p| i + p).unwrap_or(n);
                        toks.push(Token {
                            text: line[s..end].to_string(),
                            kind: TokKind::Str,
                            line: lineno,
                        });
                        i = (end + close.len()).min(n);
                        continue;
                    }
                }
                toks.push(Token { text: word.to_string(), kind: TokKind::Ident, line: lineno });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < n
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.' && i + 1 < n && b[i + 1].is_ascii_digit()))
                {
                    i += 1;
                }
                toks.push(Token {
                    text: line[start..i].to_string(),
                    kind: TokKind::Num,
                    line: lineno,
                });
                continue;
            }
            if c == b'"' {
                i += 1;
                let s = i;
                while i < n {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => break,
                        _ => i += 1,
                    }
                }
                let end = i.min(n);
                toks.push(Token {
                    text: line[s..end].to_string(),
                    kind: TokKind::Str,
                    line: lineno,
                });
                i = (end + 1).min(n + 1);
                continue;
            }
            if c == b'\'' {
                // Char literal vs lifetime: `'x'` / `'\n'` are chars,
                // `'a` (no closing quote right after) is a lifetime.
                if i + 2 < n && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    toks.push(Token {
                        text: line[i + 1..j.min(n)].to_string(),
                        kind: TokKind::Str,
                        line: lineno,
                    });
                    i = (j + 1).min(n);
                    continue;
                }
                if i + 2 < n && b[i + 2] == b'\'' {
                    toks.push(Token {
                        text: line[i + 1..i + 2].to_string(),
                        kind: TokKind::Str,
                        line: lineno,
                    });
                    i += 3;
                    continue;
                }
                let start = i + 1;
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    text: line[start..i].to_string(),
                    kind: TokKind::Life,
                    line: lineno,
                });
                continue;
            }
            toks.push(Token {
                text: (c as char).to_string(),
                kind: TokKind::Punct,
                line: lineno,
            });
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_calls_and_strings() {
        let text = "fn f(x: usize) { g(x, \"lab el\"); } // tail comment";
        let src = Source::new("a.rs", text);
        let toks = lex(&src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "f", "x", "usize", "g", "x"]);
        let strs: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, ["lab el"]);
    }

    #[test]
    fn lexer_skips_test_modules_and_comments() {
        let text = "fn live() {}\n// fn commented() {}\n#[cfg(test)]\nmod tests { fn dead() {} }";
        let src = Source::new("a.rs", text);
        let toks = lex(&src);
        assert!(toks.iter().any(|t| t.is("live")));
        assert!(!toks.iter().any(|t| t.is("commented")));
        assert!(!toks.iter().any(|t| t.is("dead")));
    }

    #[test]
    fn lexer_tracks_lines_and_block_comments() {
        let text = "fn a() {}\n/* fn b() {}\nstill comment */ fn c() {}";
        let src = Source::new("a.rs", text);
        let toks = lex(&src);
        assert!(!toks.iter().any(|t| t.is("b")));
        let c = toks.iter().find(|t| t.is("c")).expect("c lexed");
        assert_eq!(c.line, 3);
    }

    #[test]
    fn lexer_separates_lifetimes_from_char_literals() {
        let text = "fn f<'a>(x: &'a str) -> char { 'z' }";
        let src = Source::new("a.rs", text);
        let toks = lex(&src);
        assert!(toks.iter().any(|t| t.kind == TokKind::Life && t.text == "a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str && t.text == "z"));
    }

    #[test]
    fn mentions_word_is_boundary_aware() {
        assert!(mentions_word("n + len", "len"));
        assert!(mentions_word("f(len)", "len"));
        assert!(!mentions_word("byte_len + 1", "len"));
        assert!(!mentions_word("length", "len"));
    }
}
