//! `foresight-lint`: the workspace's custom static-analysis pass.
//!
//! Clippy catches generic Rust smells; this tool enforces the project's
//! *domain* invariants, the ones a general linter cannot know about:
//!
//! | rule               | what it enforces                                              |
//! |--------------------|---------------------------------------------------------------|
//! | `decode-panic`     | decode-critical files never panic on untrusted input          |
//! | `decode-index`     | no direct indexing into untrusted stream slices               |
//! | `header-bytereader`| headers are parsed via `ByteReader`, not ad-hoc byte plucking |
//! | `alloc-arith`      | allocation sizes from headers use checked arithmetic          |
//! | `instant`          | wall-clock timing goes through `foresight_util::timer`        |
//! | `kernel-label`     | kernel launches carry distinct, non-empty string labels       |
//! | `unsafe-policy`    | crate roots forbid/deny `unsafe_code`; exceptions are audited |
//! | `span-orphan`      | spans inside rayon/crossbeam fan-outs use `span_with_parent`  |
//!
//! A finding can be suppressed with a `// lint: allow(<rule>)` comment on
//! the offending line or the line directly above it; the escape is the
//! audit trail. Test modules (`#[cfg(test)]` to end of file), comment
//! lines, `target/`, and the vendored `shims/` are not scanned.
//!
//! Usage: `foresight-lint [workspace-root]` (defaults to `.`). Exit codes:
//! 0 clean, 1 findings, 2 usage/IO error.
//!
//! Several pattern strings below are built with `concat` at runtime so the
//! linter's own source never contains the tokens it hunts for.

#![forbid(unsafe_code)]

use foresight_lint::analyze::DECODE_CRITICAL;
use foresight_lint::scan::{collect_rs_files, contains_keyword, first_string_literal, Source};
use std::fmt;
use std::path::Path;

/// Files allowed to touch `std::time` directly (they implement the
/// timing layer everything else is supposed to use).
const TIMING_LAYER: &[&str] = &["crates/util/src/timer.rs", "crates/util/src/telemetry.rs"];

/// Files that fan work out across rayon/crossbeam workers. The
/// `span-orphan` rule applies only here; matched by path suffix. A span
/// opened inside a stolen-work closure parents onto whatever span that
/// worker ran last, so fan-out bodies must capture the parent id up
/// front and use `span_with_parent`.
const SPAN_FANOUT_FILES: &[&str] = &["crates/core/src/cbench.rs", "crates/core/src/serve.rs"];

#[derive(Debug)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Patterns assembled at runtime so this file never matches its own rules.
struct Patterns {
    unwrap: String,
    expect: String,
    panic: String,
    unreachable: String,
    stream_idx: Vec<String>,
    from_le: String,
    stream_word: String,
    with_capacity: String,
    malloc: String,
    instant_now: String,
    std_instant: String,
    launch: Vec<String>,
    unsafe_tok: String,
    forbid_unsafe: String,
    deny_unsafe: String,
    allow_unsafe: String,
    safety: String,
    fanout: Vec<String>,
    naked_span: String,
    escape_prefix: String,
}

impl Patterns {
    fn new() -> Self {
        Self {
            unwrap: [".unw", "rap()"].concat(),
            expect: [".exp", "ect("].concat(),
            panic: ["pan", "ic!("].concat(),
            unreachable: ["unreach", "able!("].concat(),
            stream_idx: ["stream[", "stream_bytes[", "body[", "payload["]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            from_le: ["from_le", "_bytes"].concat(),
            stream_word: "stream".to_string(),
            with_capacity: ["with_cap", "acity("].concat(),
            malloc: [".mal", "loc("].concat(),
            instant_now: ["Ins", "tant::now"].concat(),
            std_instant: ["std::time::", "Ins", "tant"].concat(),
            launch: vec![
                [".lau", "nch("].concat(),
                ["launch_", "grid("].concat(),
                [".enqueue_", "unit("].concat(),
                [".exec_", "unit("].concat(),
            ],
            unsafe_tok: ["uns", "afe"].concat(),
            forbid_unsafe: ["#![forbid(", "uns", "afe_code)]"].concat(),
            deny_unsafe: ["#![deny(", "uns", "afe_code)]"].concat(),
            allow_unsafe: ["allow(", "uns", "afe_code)"].concat(),
            safety: ["SAF", "ETY:"].concat(),
            fanout: vec![
                [".par_", "iter"].concat(),
                ["rayon::", "scope"].concat(),
                ["crossbeam::", "scope"].concat(),
                [".spa", "wn("].concat(),
            ],
            naked_span: ["telemetry::", "span("].concat(),
            escape_prefix: ["// lint: ", "allow("].concat(),
        }
    }
}

fn is_decode_critical(path: &str) -> bool {
    DECODE_CRITICAL.iter().any(|s| path.ends_with(s))
}

fn is_timing_layer(path: &str) -> bool {
    TIMING_LAYER.iter().any(|s| path.ends_with(s))
}

fn is_span_fanout_file(path: &str) -> bool {
    SPAN_FANOUT_FILES.iter().any(|s| path.ends_with(s))
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
}

fn push(findings: &mut Vec<Finding>, src: &Source, i: usize, rule: &'static str, msg: String) {
    findings.push(Finding { file: src.path.to_string(), line: i + 1, rule, message: msg });
}

/// Rules 1–4: decode-path hygiene (decode-critical files only).
fn check_decode_rules(src: &Source, pats: &Patterns, findings: &mut Vec<Finding>) {
    if !is_decode_critical(src.path) {
        return;
    }
    for (i, code) in src.code.iter().enumerate() {
        if code.is_empty() {
            continue;
        }
        // decode-panic: panicking constructs on the untrusted-input path.
        for (pat, what) in [
            (&pats.unwrap, "unwrap"),
            (&pats.expect, "expect"),
            (&pats.panic, "panic!"),
            (&pats.unreachable, "unreachable!"),
        ] {
            if code.contains(pat.as_str()) && !src.escaped(i, "decode-panic", &pats.escape_prefix) {
                push(
                    findings,
                    src,
                    i,
                    "decode-panic",
                    format!("`{what}` in a decode-critical file; return Err(Error::corrupt(..)) instead"),
                );
            }
        }
        // decode-index: direct indexing into the untrusted stream slice.
        if pats.stream_idx.iter().any(|p| code.contains(p.as_str()))
            && !src.escaped(i, "decode-index", &pats.escape_prefix)
        {
            push(
                findings,
                src,
                i,
                "decode-index",
                "direct slice indexing into an untrusted stream; use ByteReader::take".into(),
            );
        }
        // header-bytereader: ad-hoc header plucking.
        if code.contains(pats.from_le.as_str())
            && code.contains(pats.stream_word.as_str())
            && !src.escaped(i, "header-bytereader", &pats.escape_prefix)
        {
            push(
                findings,
                src,
                i,
                "header-bytereader",
                "header field decoded by hand; use foresight_util::ByteReader".into(),
            );
        }
        // alloc-arith: allocation sizes computed with unchecked arithmetic.
        let allocates =
            code.contains(pats.with_capacity.as_str()) || code.contains(pats.malloc.as_str());
        if allocates
            && (code.contains('*') || code.contains(" + "))
            && !code.contains("checked_")
            && !code.contains("saturating_")
            && !src.escaped(i, "alloc-arith", &pats.escape_prefix)
        {
            push(
                findings,
                src,
                i,
                "alloc-arith",
                "allocation size uses unchecked arithmetic; use checked_mul/checked_add or escape with a justification".into(),
            );
        }
    }
}

/// Rule 5: direct `std::time::Instant` use outside the timing layer.
fn check_instant(src: &Source, pats: &Patterns, findings: &mut Vec<Finding>) {
    if is_timing_layer(src.path) {
        return;
    }
    for (i, code) in src.code.iter().enumerate() {
        if code.is_empty() {
            continue;
        }
        if (code.contains(pats.instant_now.as_str()) || code.contains(pats.std_instant.as_str()))
            && !src.escaped(i, "instant", &pats.escape_prefix)
        {
            push(
                findings,
                src,
                i,
                "instant",
                "raw Instant timing; use foresight_util::timer (time/timed) so spans reach telemetry".into(),
            );
        }
    }
}

/// Rule 6: kernel launches must carry distinct non-empty literal labels.
/// Sites whose label is a runtime expression (no string literal within the
/// call head) are skipped — the label was validated where it was built.
fn check_kernel_labels(src: &Source, pats: &Patterns, findings: &mut Vec<Finding>) {
    let mut seen: Vec<(String, usize)> = Vec::new();
    for (i, code) in src.code.iter().enumerate() {
        if code.is_empty() || !pats.launch.iter().any(|p| code.contains(p.as_str())) {
            continue;
        }
        if src.escaped(i, "kernel-label", &pats.escape_prefix) {
            continue;
        }
        // The label literal may sit on the launch line or, for multi-line
        // call sites, a few lines below.
        let mut label: Option<&str> = None;
        for j in i..(i + 5).min(src.code.len()) {
            if let Some(lit) = first_string_literal(&src.code[j]) {
                label = Some(lit);
                break;
            }
        }
        let Some(label) = label else { continue };
        if label.is_empty() {
            push(findings, src, i, "kernel-label", "kernel launch with an empty label".into());
            continue;
        }
        if let Some((_, prev)) = seen.iter().find(|(l, _)| l == label) {
            push(
                findings,
                src,
                i,
                "kernel-label",
                format!("duplicate kernel label '{label}' (first used at line {})", prev + 1),
            );
        } else {
            seen.push((label.to_string(), i));
        }
    }
}

/// Rule 7: crate roots must pin down the unsafe policy, and any file that
/// actually uses the keyword must opt back in visibly and carry a SAFETY
/// comment. File-level rule; no line escapes.
fn check_unsafe_policy(src: &Source, pats: &Patterns, findings: &mut Vec<Finding>) {
    let raw_text = src.raw.join("\n");
    if is_crate_root(src.path)
        && !raw_text.contains(pats.forbid_unsafe.as_str())
        && !raw_text.contains(pats.deny_unsafe.as_str())
    {
        findings.push(Finding {
            file: src.path.to_string(),
            line: 1,
            rule: "unsafe-policy",
            message: format!(
                "crate root lacks {} (or {} with audited exceptions)",
                pats.forbid_unsafe, pats.deny_unsafe
            ),
        });
    }
    let uses_unsafe = src
        .code
        .iter()
        .any(|c| !c.is_empty() && contains_keyword(c, pats.unsafe_tok.as_str()));
    if uses_unsafe {
        if !raw_text.contains(pats.allow_unsafe.as_str()) {
            push(
                findings,
                src,
                0,
                "unsafe-policy",
                format!("file uses the keyword but has no {} opt-in", pats.allow_unsafe),
            );
        }
        if !raw_text.contains(pats.safety.as_str()) {
            push(
                findings,
                src,
                0,
                "unsafe-policy",
                format!("file uses the keyword but has no {} comment", pats.safety),
            );
        }
    }
}

/// Rule 8: ambient-parent spans inside rayon/crossbeam fan-out closures
/// (span-fanout files only). Under work stealing, a span opened inside a
/// worker closure parents onto whichever span that worker happened to
/// record last — an orphaned root in the Chrome trace. The sanctioned
/// shape captures the parent id before the fan-out and passes it through
/// `span_with_parent`. The tracker is a brace-depth heuristic: a line
/// containing a fan-out token opens a region at the current depth, and
/// the region closes once depth returns to (or below) that mark on a
/// `;`-terminated line — multi-line iterator chains stay open until
/// their `.collect();` lands.
fn check_span_orphan(src: &Source, pats: &Patterns, findings: &mut Vec<Finding>) {
    if !is_span_fanout_file(src.path) {
        return;
    }
    let mut depth: i64 = 0;
    // Brace depth at which each currently-open fan-out statement began.
    let mut regions: Vec<i64> = Vec::new();
    for (i, code) in src.code.iter().enumerate() {
        if code.is_empty() {
            continue;
        }
        if pats.fanout.iter().any(|p| code.contains(p.as_str())) {
            regions.push(depth);
        }
        if !regions.is_empty()
            && code.contains(pats.naked_span.as_str())
            && !src.escaped(i, "span-orphan", &pats.escape_prefix)
        {
            push(
                findings,
                src,
                i,
                "span-orphan",
                "ambient-parent span inside a fan-out closure; capture the parent id before the fan-out and use span_with_parent".into(),
            );
        }
        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        let ends_stmt = code.trim_end().ends_with(';');
        while let Some(&start) = regions.last() {
            if depth < start || (depth <= start && ends_stmt) {
                regions.pop();
            } else {
                break;
            }
        }
    }
}

fn scan_file(path: &str, text: &str, pats: &Patterns) -> Vec<Finding> {
    let src = Source::new(path, text);
    let mut findings = Vec::new();
    check_decode_rules(&src, pats, &mut findings);
    check_instant(&src, pats, &mut findings);
    check_kernel_labels(&src, pats, &mut findings);
    check_unsafe_policy(&src, pats, &mut findings);
    check_span_orphan(&src, pats, &mut findings);
    findings
}

fn main() {
    let mut args = std::env::args().skip(1);
    let root = args.next().unwrap_or_else(|| ".".to_string());
    if args.next().is_some() {
        eprintln!("usage: foresight-lint [workspace-root]");
        std::process::exit(2);
    }
    let root_path = Path::new(&root);
    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(root_path, &mut files) {
        eprintln!("error: cannot walk '{root}': {e}");
        std::process::exit(2);
    }
    files.sort();
    let pats = Patterns::new();
    let mut findings = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read '{}': {e}", file.display());
                std::process::exit(2);
            }
        };
        let rel = file
            .strip_prefix(root_path)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_file(&rel, &text, &pats));
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "foresight-lint: {} file(s) scanned, {} finding(s)",
        files.len(),
        findings.len()
    );
    if !findings.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECODE_PATH: &str = "crates/sz/src/stream.rs";

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_in_decode_file() {
        let pats = Patterns::new();
        let src = "fn f(d: &[u8]) { let x = d.first().unwrap(); }";
        let found = scan_file(DECODE_PATH, src, &pats);
        assert_eq!(rules(&found), ["decode-panic"]);
    }

    #[test]
    fn same_code_ok_outside_decode_files() {
        let pats = Patterns::new();
        let src = "fn f(d: &[u8]) { let x = d.first().unwrap(); }";
        assert!(scan_file("crates/cosmo/src/nyx.rs", src, &pats).is_empty());
    }

    #[test]
    fn escape_on_same_or_previous_line_suppresses() {
        let pats = Patterns::new();
        // Full escape marker, e.g. `// lint: allow(decode-panic)`.
        let marker = [pats.escape_prefix.as_str(), "decode-panic)"].concat();
        let src = format!("fn f(d: &[u8]) {{\nlet x = d.first().unwrap(); {marker}\n}}");
        assert!(scan_file(DECODE_PATH, &src, &pats).is_empty(), "same-line escape");
        let src = format!("fn f(d: &[u8]) {{\n{marker} justification\nlet x = d.first().unwrap();\n}}");
        assert!(scan_file(DECODE_PATH, &src, &pats).is_empty(), "previous-line escape");
    }

    #[test]
    fn comment_and_test_lines_are_skipped() {
        let pats = Patterns::new();
        let src = "//! docs mention .unwrap() freely\nfn ok() {}\n#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}";
        assert!(scan_file(DECODE_PATH, src, &pats).is_empty());
    }

    #[test]
    fn flags_stream_indexing_and_manual_headers() {
        let pats = Patterns::new();
        let src = "fn d(stream: &[u8]) -> u32 {\nlet n = u32::from_le_bytes(stream[..4].try_into().ok().into());\nn\n}";
        let found = scan_file(DECODE_PATH, src, &pats);
        assert!(rules(&found).contains(&"decode-index"), "{found:?}");
        assert!(rules(&found).contains(&"header-bytereader"), "{found:?}");
    }

    #[test]
    fn flags_unchecked_alloc_arith() {
        let pats = Patterns::new();
        let src = "fn a(n: usize) { let v: Vec<u8> = Vec::with_capacity(n * 4); drop(v); }";
        assert_eq!(rules(&scan_file(DECODE_PATH, src, &pats)), ["alloc-arith"]);
        let src = "fn a(n: usize) { let v: Vec<u8> = Vec::with_capacity(n.checked_mul(4).unwrap_or(0)); drop(v); }";
        assert!(scan_file(DECODE_PATH, src, &pats).is_empty());
    }

    #[test]
    fn flags_raw_instant_everywhere_but_timing_layer() {
        let pats = Patterns::new();
        let line = ["let t = std::time::", "Ins", "tant::now();"].concat();
        let src = format!("fn f() {{ {line} }}");
        assert_eq!(rules(&scan_file("crates/bench/src/report.rs", &src, &pats)), ["instant"]);
        assert!(scan_file("crates/util/src/timer.rs", &src, &pats).is_empty());
    }

    #[test]
    fn kernel_labels_must_be_distinct_and_non_empty() {
        let pats = Patterns::new();
        let call = ["launch_", "grid(dev, kind, grid, "].concat();
        let src = format!("fn f() {{\n{call}\"a\", w);\n{call}\"a\", w);\n}}");
        assert_eq!(rules(&scan_file("crates/gpu/src/x.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"\", w);\n}}");
        assert_eq!(rules(&scan_file("crates/gpu/src/x.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"a\", w);\n{call}\"b\", w);\n}}");
        assert!(scan_file("crates/gpu/src/x.rs", &src, &pats).is_empty());
        // Non-literal label sites are skipped.
        let src = format!("fn f(l: &str) {{\n{call}l, w);\n}}");
        assert!(scan_file("crates/gpu/src/x.rs", &src, &pats).is_empty());
    }

    #[test]
    fn serve_queue_enqueue_sites_are_launch_sites() {
        let pats = Patterns::new();
        let call = ["q.enqueue_", "unit(t, kind, n, b, inb, outb, "].concat();
        let src = format!("fn f() {{\n{call}\"u\");\n{call}\"u\");\n}}");
        assert_eq!(rules(&scan_file("crates/gpu/src/x.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"\");\n}}");
        assert_eq!(rules(&scan_file("crates/gpu/src/x.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"u0\");\n{call}\"u1\");\n}}");
        assert!(scan_file("crates/gpu/src/x.rs", &src, &pats).is_empty());
    }

    #[test]
    fn cluster_exec_sites_are_launch_sites() {
        let pats = Patterns::new();
        let call = ["state.exec_", "unit(d, t, u, "].concat();
        let src = format!("fn f() {{\n{call}\"r0\");\n{call}\"r0\");\n}}");
        assert_eq!(rules(&scan_file("crates/core/src/cluster.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"\");\n}}");
        assert_eq!(rules(&scan_file("crates/core/src/cluster.rs", &src, &pats)), ["kernel-label"]);
        let src = format!("fn f() {{\n{call}\"r0\");\n{call}\"r1\");\n}}");
        assert!(scan_file("crates/core/src/cluster.rs", &src, &pats).is_empty());
        // Runtime-label dispatch sites (the router's) are skipped.
        let src = format!("fn f(l: &str) {{\n{call}l);\n}}");
        assert!(scan_file("crates/core/src/cluster.rs", &src, &pats).is_empty());
    }

    #[test]
    fn crate_roots_need_an_unsafe_policy() {
        let pats = Patterns::new();
        let found = scan_file("crates/foo/src/lib.rs", "pub mod x;", &pats);
        assert_eq!(rules(&found), ["unsafe-policy"]);
        let ok = format!("{}\npub mod x;", pats.forbid_unsafe);
        assert!(scan_file("crates/foo/src/lib.rs", &ok, &pats).is_empty());
    }

    #[test]
    fn unsafe_usage_needs_opt_in_and_safety_comment() {
        let pats = Patterns::new();
        let body = [pats.unsafe_tok.as_str(), " { core::hint::spin_loop(); }"].concat();
        let src = format!("fn f() {{ {body} }}");
        let found = scan_file("crates/fft/src/fft3d.rs", &src, &pats);
        assert_eq!(rules(&found), ["unsafe-policy", "unsafe-policy"]);
        let src = format!(
            "#![{}]\n// {}: sound because it is a no-op\nfn f() {{ {body} }}",
            pats.allow_unsafe, pats.safety
        );
        assert!(scan_file("crates/fft/src/fft3d.rs", &src, &pats).is_empty());
    }

    #[test]
    fn flags_ambient_span_inside_fanout() {
        let pats = Patterns::new();
        let span = ["telemetry::", "span("].concat();
        let par = [".par_", "iter()"].concat();
        let src = format!(
            "fn f(xs: &[u32]) {{\nlet v: Vec<_> = xs{par}.map(|x| {{\nlet _s = {span}\"pair\");\nx + 1\n}}).collect();\ndrop(v);\n}}"
        );
        assert_eq!(rules(&scan_file("crates/core/src/cbench.rs", &src, &pats)), ["span-orphan"]);
        // Same code outside the fan-out file list is not checked.
        assert!(scan_file("crates/core/src/runner.rs", &src, &pats).is_empty());
    }

    #[test]
    fn span_with_parent_and_spans_outside_fanouts_are_fine() {
        let pats = Patterns::new();
        let span = ["telemetry::", "span("].concat();
        let swp = ["telemetry::", "span_with_parent("].concat();
        let par = [".par_", "iter()"].concat();
        // The sanctioned shape: span before the fan-out, span_with_parent
        // inside the closure.
        let src = format!(
            "fn f(xs: &[u32]) {{\nlet s = {span}\"sweep\");\nlet id = s.id();\nlet v: Vec<_> = xs{par}.map(|x| {{\nlet _c = {swp}\"pair\", id);\nx\n}}).collect();\ndrop(v);\n}}"
        );
        assert!(scan_file("crates/core/src/cbench.rs", &src, &pats).is_empty());
        // A span after the fan-out statement closes is ambient again.
        let src = format!(
            "fn f(xs: &[u32]) {{\nlet v: Vec<_> = xs{par}.map(|x| x).collect();\nlet _s = {span}\"after\");\ndrop(v);\n}}"
        );
        assert!(scan_file("crates/core/src/cbench.rs", &src, &pats).is_empty());
    }

    #[test]
    fn span_orphan_escape_suppresses() {
        let pats = Patterns::new();
        let span = ["telemetry::", "span("].concat();
        let par = [".par_", "iter()"].concat();
        let marker = [pats.escape_prefix.as_str(), "span-orphan)"].concat();
        let src = format!(
            "fn f(xs: &[u32]) {{\nlet v: Vec<_> = xs{par}.map(|x| {{\n{marker} root-per-item is intended\nlet _s = {span}\"pair\");\nx\n}}).collect();\ndrop(v);\n}}"
        );
        assert!(scan_file("crates/core/src/cbench.rs", &src, &pats).is_empty());
    }
}
