//! Shared static-analysis library behind the workspace's two analysis
//! bins:
//!
//! * `foresight-lint` — the single-file token scanner (7+1 domain rules,
//!   see `src/main.rs`),
//! * `foresight-analyze` — the dataflow-aware workspace analyzer (taint,
//!   determinism, panic-reachability; see [`analyze`]).
//!
//! Both bins lex files through [`scan`], so they agree on comment
//! stripping, `#[cfg(test)]` exclusion, escape comments, and which
//! directories are never scanned. [`graph`] builds the per-file function
//! tables and the intra-crate call graph the dataflow passes walk.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod graph;
pub mod scan;
