//! Function tables and the intra-crate call graph.
//!
//! Built from the shared token stream: a heuristic item parser records
//! every `fn` with its parameter names and body span, then call edges
//! connect `ident(` call sites to same-crate functions of that name.
//! Name-based matching over-approximates (two methods named `len` in one
//! crate both become candidates), which is the right bias for the
//! passes built on top: reachability and taint want to err toward
//! reporting, and every finding still points at a concrete line a human
//! can judge.

use crate::scan::{Token, TokKind};
use std::collections::BTreeMap;

/// One parsed function.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Index into the analyzer's file table.
    pub file: usize,
    /// Crate the file belongs to (`crates/<name>/...`, else `root`).
    pub krate: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace (approximate for one-liners).
    pub end_line: usize,
    /// Parameter names in order (`self` recorded literally).
    pub params: Vec<String>,
    /// Token index range of the body, `[open_brace, close_brace]`,
    /// into the owning file's token stream. Empty for bodyless items.
    pub body: Option<(usize, usize)>,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Candidate callees (indices into `CallGraph::fns`); name-matched,
    /// so overloaded names yield several candidates.
    pub callees: Vec<usize>,
    /// Callee name as written.
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Argument texts, one per comma-separated top-level argument.
    pub args: Vec<String>,
}

/// The workspace call graph.
pub struct CallGraph {
    pub fns: Vec<FnInfo>,
    /// fn index -> call sites in body order.
    pub calls: Vec<Vec<CallSite>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Derives the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Finds the matching close delimiter for the open delimiter at `open`,
/// tracking all three bracket kinds. Returns the index of the matching
/// token or `toks.len()` when unbalanced.
pub fn matching(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

/// Parses the functions of one token stream. `file` is the caller's file
/// index, `path` its workspace-relative path.
pub fn parse_fns(toks: &[Token], file: usize, path: &str) -> Vec<FnInfo> {
    let krate = crate_of(path);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            i += 1;
            continue;
        }
        // `.fn` never occurs; `fn` inside `Fn(..)` bounds is uppercase.
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = t.line;
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if toks.get(j).map(|t| t.is("<")).unwrap_or(false) {
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !toks.get(j).map(|t| t.is("(")).unwrap_or(false) {
            i += 1;
            continue;
        }
        let close = matching(toks, j);
        let params = parse_params(&toks[j + 1..close.min(toks.len())]);
        // Body: first `{` or `;` after the parameter list (return types
        // and where clauses realistically contain neither).
        let mut k = close + 1;
        let mut body = None;
        while let Some(t) = toks.get(k) {
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                let end = matching(toks, k);
                body = Some((k, end.min(toks.len().saturating_sub(1))));
                break;
            }
            k += 1;
        }
        let end_line = body
            .and_then(|(_, e)| toks.get(e).map(|t| t.line))
            .unwrap_or(line);
        fns.push(FnInfo { name, file, krate: krate.clone(), line, end_line, params, body });
        i = match body {
            // Recurse into the body anyway: nested fns are rare but real.
            Some((open, _)) => open + 1,
            None => k + 1,
        };
    }
    fns
}

/// Parameter names from the token slice between the parens.
fn parse_params(toks: &[Token]) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut seg: Vec<&Token> = Vec::new();
    let flush = |seg: &mut Vec<&Token>, params: &mut Vec<String>| {
        // The name is the last ident before the first `:` (handles
        // `mut x: T`); a lone `self`/`&mut self` records as `self`.
        let mut name = None;
        for t in seg.iter() {
            if t.kind == TokKind::Punct && t.text == ":" {
                break;
            }
            if t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" {
                name = Some(t.text.clone());
            }
        }
        if let Some(n) = name {
            params.push(n);
        }
        seg.clear();
    };
    for t in toks {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    flush(&mut seg, &mut params);
                    continue;
                }
                _ => {}
            }
        }
        seg.push(t);
    }
    flush(&mut seg, &mut params);
    params
}

impl CallGraph {
    /// Builds the graph over `files`: one `(path, tokens)` per file.
    pub fn build(files: &[(String, Vec<Token>)]) -> Self {
        let mut fns = Vec::new();
        for (fi, (path, toks)) in files.iter().enumerate() {
            fns.extend(parse_fns(toks, fi, path));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut calls = Vec::with_capacity(fns.len());
        for f in &fns {
            calls.push(extract_calls(f, files, &fns, &by_name));
        }
        Self { fns, calls, by_name }
    }

    /// All functions named `name` (any crate).
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Index of the function named `name` defined in the file whose path
    /// ends with `file_suffix`, if any.
    pub fn find(&self, files: &[(String, Vec<Token>)], file_suffix: &str, name: &str) -> Option<usize> {
        self.named(name)
            .iter()
            .copied()
            .find(|&i| files[self.fns[i].file].0.ends_with(file_suffix))
    }

    /// Functions reachable from `start` within `hops` call-graph edges,
    /// with the hop count and one shortest call path (names) per node.
    pub fn reachable(&self, start: usize, hops: usize) -> Vec<(usize, usize, Vec<String>)> {
        let mut seen: BTreeMap<usize, (usize, Vec<String>)> = BTreeMap::new();
        seen.insert(start, (0, vec![self.fns[start].name.clone()]));
        let mut frontier = vec![start];
        for h in 1..=hops {
            let mut next = Vec::new();
            for &f in &frontier {
                let path = seen[&f].1.clone();
                for cs in &self.calls[f] {
                    for &callee in &cs.callees {
                        if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(callee) {
                            let mut p = path.clone();
                            p.push(self.fns[callee].name.clone());
                            e.insert((h, p));
                            next.push(callee);
                        }
                    }
                }
            }
            frontier = next;
        }
        seen.into_iter().map(|(i, (h, p))| (i, h, p)).collect()
    }
}

/// Call sites inside `f`'s body, candidates restricted to same-crate
/// functions. Macro invocations (`name!`) and the defining `fn` token
/// are excluded.
fn extract_calls(
    f: &FnInfo,
    files: &[(String, Vec<Token>)],
    fns: &[FnInfo],
    by_name: &BTreeMap<String, Vec<usize>>,
) -> Vec<CallSite> {
    let Some((open, close)) = f.body else { return Vec::new() };
    let toks = &files[f.file].1;
    let mut out = Vec::new();
    let mut i = open;
    while i < close && i + 1 < toks.len() {
        let t = &toks[i];
        let isname = t.kind == TokKind::Ident
            && toks[i + 1].kind == TokKind::Punct
            && toks[i + 1].text == "(";
        if !isname {
            i += 1;
            continue;
        }
        let prev_is_fn = i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn";
        if prev_is_fn {
            i += 1;
            continue;
        }
        // `.get(` / `.get_mut(` as method calls are overwhelmingly the
        // bounds-checked std slice/map API; linking them to a same-crate
        // `fn get` would fabricate edges.
        let method_call =
            i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
        if method_call && (t.text == "get" || t.text == "get_mut") {
            i += 1;
            continue;
        }
        let candidates: Vec<usize> = by_name
            .get(&t.text)
            .map(|v| v.iter().copied().filter(|&c| fns[c].krate == f.krate).collect())
            .unwrap_or_default();
        if candidates.is_empty() {
            i += 1;
            continue;
        }
        let end = matching(toks, i + 1);
        out.push(CallSite {
            callees: candidates,
            name: t.text.clone(),
            line: t.line,
            args: split_args(&toks[i + 2..end.min(toks.len())]),
        });
        i += 1;
    }
    out
}

/// Splits an argument token slice at top-level commas, rendering each
/// argument back to text with single spaces between tokens.
fn split_args(toks: &[Token]) -> Vec<String> {
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for t in toks {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    if !cur.trim().is_empty() {
                        args.push(cur.trim().to_string());
                    }
                    cur = String::new();
                    continue;
                }
                _ => {}
            }
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        if t.kind == TokKind::Str {
            cur.push('"');
            cur.push_str(&t.text);
            cur.push('"');
        } else {
            cur.push_str(&t.text);
        }
    }
    if !cur.trim().is_empty() {
        args.push(cur.trim().to_string());
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{lex, Source};

    fn graph(src_texts: &[(&str, &str)]) -> (Vec<(String, Vec<Token>)>, CallGraph) {
        let files: Vec<(String, Vec<Token>)> = src_texts
            .iter()
            .map(|(p, t)| (p.to_string(), lex(&Source::new(p, t))))
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn parses_fns_params_and_bodies() {
        let (_, g) = graph(&[(
            "crates/x/src/lib.rs",
            "pub fn a(n: usize, mut buf: Vec<u8>) -> usize { helper(n) }\nfn helper(m: usize) -> usize { m }",
        )]);
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.fns[0].name, "a");
        assert_eq!(g.fns[0].params, ["n", "buf"]);
        assert_eq!(g.fns[0].krate, "x");
        assert_eq!(g.calls[0].len(), 1);
        assert_eq!(g.calls[0][0].name, "helper");
        assert_eq!(g.calls[0][0].args, ["n"]);
    }

    #[test]
    fn calls_are_intra_crate_only() {
        let (_, g) = graph(&[
            ("crates/x/src/lib.rs", "fn caller() { shared(); }"),
            ("crates/y/src/lib.rs", "fn shared() {}"),
        ]);
        // `shared` is defined only in crate y; x's call has no same-crate
        // candidate, so no edge.
        assert!(g.calls[0].is_empty());
    }

    #[test]
    fn reachability_respects_hop_budget() {
        let (files, g) = graph(&[(
            "crates/x/src/lib.rs",
            "fn entry() { one(); }\nfn one() { two(); }\nfn two() { three(); }\nfn three() {}",
        )]);
        let entry = g.find(&files, "lib.rs", "entry").expect("entry parsed");
        let within2: Vec<String> =
            g.reachable(entry, 2).into_iter().map(|(i, _, _)| g.fns[i].name.clone()).collect();
        assert!(within2.contains(&"two".to_string()));
        assert!(!within2.contains(&"three".to_string()));
        let (_, hops, path) = g
            .reachable(entry, 3)
            .into_iter()
            .find(|&(i, _, _)| g.fns[i].name == "three")
            .expect("three reachable in 3");
        assert_eq!(hops, 3);
        assert_eq!(path, ["entry", "one", "two", "three"]);
    }

    #[test]
    fn generic_fns_and_bodyless_decls_parse() {
        let (_, g) = graph(&[(
            "crates/x/src/lib.rs",
            "trait T { fn sig(&self, n: usize); }\nfn gen<T: Clone>(x: T) -> T { x.clone() }",
        )]);
        let sig = g.fns.iter().find(|f| f.name == "sig").expect("sig parsed");
        assert!(sig.body.is_none());
        assert_eq!(sig.params, ["self", "n"]);
        let gen = g.fns.iter().find(|f| f.name == "gen").expect("gen parsed");
        assert_eq!(gen.params, ["x"]);
        assert!(gen.body.is_some());
    }
}
