//! Fixture-corpus conformance suite for `foresight-analyze`.
//!
//! Each true-positive fixture tags its seeded findings with
//! `// EXPECT: <rule>[, <rule>...]` on the offending line; the suite
//! parses the tags and demands an exact match — same lines, same rule
//! sets, nothing extra. Clean fixtures mirror the same sink shapes with
//! sanitizers applied and must produce zero findings. On top of the
//! corpus: fingerprint stability, the baseline bless → rerun → zero-new
//! round trip, and the sanitizer-deletion gate (removing a documented
//! `checked_mul` must surface a NEW finding).

use foresight_lint::analyze::{
    analyze_files, parse_baseline, render_baseline, sarif, AnalyzeOptions, Finding,
};
use std::collections::BTreeMap;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// `line -> sorted rules` parsed from `// EXPECT:` tags.
fn expectations(text: &str) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let Some(at) = line.find("// EXPECT:") else { continue };
        let rules = line[at + "// EXPECT:".len()..]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        out.entry(i + 1).or_default().extend(rules);
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

fn group(findings: &[Finding], file: &str) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.file == file) {
        out.entry(f.line).or_default().push(f.rule.to_string());
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, t)| (p.to_string(), t.to_string())).collect();
    analyze_files(&owned, &AnalyzeOptions::default())
}

/// Runs one fixture under a virtual workspace path and checks the tags
/// exactly.
fn check_fixture(name: &str, virtual_path: &str) {
    let text = fixture(name);
    let findings = run(&[(virtual_path, &text)]);
    let got = group(&findings, virtual_path);
    let want = expectations(&text);
    assert_eq!(got, want, "{name}: findings (left) must match EXPECT tags (right)");
}

#[test]
fn taint_true_positives_exact() {
    check_fixture("taint_tp.rs", "crates/sz/src/stream.rs");
}

#[test]
fn taint_clean_fixture_passes() {
    check_fixture("taint_clean.rs", "crates/sz/src/stream.rs");
}

#[test]
fn determinism_true_positives_exact() {
    check_fixture("det_tp.rs", "crates/sz/src/huffman.rs");
}

#[test]
fn determinism_clean_fixture_passes() {
    check_fixture("det_clean.rs", "crates/sz/src/huffman.rs");
}

#[test]
fn panic_true_positives_exact_and_hop_budget_holds() {
    // deep4's `expect` sits 5 hops from `serve`; exact-match proves the
    // default 4-hop budget excludes it while admit's sites are caught.
    check_fixture("panic_tp.rs", "crates/core/src/serve.rs");
}

#[test]
fn panic_clean_fixture_passes() {
    check_fixture("panic_clean.rs", "crates/core/src/serve.rs");
}

#[test]
fn fingerprints_are_unique_and_deterministic() {
    let text = fixture("taint_tp.rs");
    let a = run(&[("crates/sz/src/stream.rs", &text)]);
    let b = run(&[("crates/sz/src/stream.rs", &text)]);
    assert!(!a.is_empty());
    let fa: Vec<&String> = a.iter().map(|f| &f.fingerprint).collect();
    let fb: Vec<&String> = b.iter().map(|f| &f.fingerprint).collect();
    assert_eq!(fa, fb, "fingerprints must be deterministic");
    let mut dedup = fa.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), fa.len(), "fingerprints must be unique per finding");
    for f in &a {
        assert_eq!(f.fingerprint.len(), 16, "16 hex chars: {f:?}");
        assert!(f.fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

#[test]
fn baseline_bless_then_rerun_reports_zero_new() {
    // Bless everything the corpus produces, rerun, and check that every
    // finding is covered — the --deny-new gate would exit 0.
    let sets: Vec<(String, String)> = [
        ("crates/sz/src/stream.rs", fixture("taint_tp.rs")),
        ("crates/sz/src/huffman.rs", fixture("det_tp.rs")),
        ("crates/core/src/serve.rs", fixture("panic_tp.rs")),
    ]
    .into_iter()
    .map(|(p, t)| (p.to_string(), t))
    .collect();
    let first = analyze_files(&sets, &AnalyzeOptions::default());
    assert!(!first.is_empty());
    let blessed = parse_baseline(&render_baseline(&first));
    let second = analyze_files(&sets, &AnalyzeOptions::default());
    let new: Vec<&Finding> =
        second.iter().filter(|f| !blessed.contains(&f.fingerprint)).collect();
    assert!(new.is_empty(), "rerun after bless must report zero new: {new:?}");
}

#[test]
fn deleting_documented_sanitizer_creates_new_finding() {
    // The acceptance gate: taint_clean.rs is clean because (among other
    // sanitizers) a checked_mul bounds the read length. Deleting it must
    // surface a finding whose fingerprint is NOT in the blessed baseline
    // of the clean state — exactly what fails `--deny-new` in CI.
    let clean = fixture("taint_clean.rs");
    let blessed = parse_baseline(&render_baseline(&run(&[(
        "crates/sz/src/stream.rs",
        &clean,
    )])));
    let sabotaged = clean.replace(
        "r.take(raw.checked_mul(4).ok_or_else(|| Error::corrupt(\"overflow\"))?)?",
        "r.take(raw * 4)?",
    );
    assert_ne!(clean, sabotaged, "the documented sanitizer must exist to be deleted");
    let after = run(&[("crates/sz/src/stream.rs", &sabotaged)]);
    let new: Vec<&Finding> =
        after.iter().filter(|f| !blessed.contains(&f.fingerprint)).collect();
    assert!(
        new.iter().any(|f| f.rule == "taint-arith"),
        "deleting checked_mul must surface a new taint-arith finding, got {new:?}"
    );
}

#[test]
fn sarif_covers_every_fixture_finding() {
    let text = fixture("taint_tp.rs");
    let findings = run(&[("crates/sz/src/stream.rs", &text)]);
    let doc = sarif(&findings);
    assert!(doc.contains("\"version\":\"2.1.0\""));
    for f in &findings {
        assert!(doc.contains(&f.fingerprint), "SARIF must carry {}", f.fingerprint);
        assert!(doc.contains(f.rule));
    }
}
