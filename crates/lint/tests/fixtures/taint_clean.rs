// Near-miss clean file for the taint pass: the same sink shapes as
// taint_tp.rs (allocation, read length, indexing), but every
// header-derived value is sanitized first — capped read, comparison
// guard rejecting with Err, checked arithmetic, explicit .min cap.
// Scanned under crates/sz/src/stream.rs; must produce zero findings.
fn decode(stream: &[u8]) -> Result<(), Error> {
    let mut r = ByteReader::new(stream);
    let n = r.u64_le_capped(MAX_COUNT, "count")? as usize;
    let raw = r.u32_le()? as usize;
    let blocks = r.u32_le()? as usize;
    if blocks > stream.len() {
        return Err(Error::corrupt("count too big"));
    }
    let buf: Vec<u8> = Vec::with_capacity(n);
    let spec = r.take(raw.checked_mul(4).ok_or_else(|| Error::corrupt("overflow"))?)?;
    let clamped = r.u32_le()? as usize;
    let idx = clamped.min(stream.len());
    let first = stream[idx];
    for _b in 0..blocks {
        let _ = first;
    }
    drop((buf, spec, first));
    Ok(())
}
