// Seeded determinism-pass true positives, scanned under the virtual
// path crates/sz/src/huffman.rs (byte-producing). Each tagged line must
// be reported with exactly the tagged rules.
fn histogram(codes: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::HashMap::new(); // EXPECT: det-hash-decl
    for &c in codes {
        *map.entry(c).or_insert(0u64) += 1;
    }
    let mut out: Vec<(u32, u64)> = map.into_iter().collect(); // EXPECT: det-hash-iter
    out.sort_unstable();
    out
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now(); // EXPECT: det-wallclock
    drop(t);
    0
}

fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // EXPECT: det-rng
    rng.gen()
}

fn worker_tag() -> usize {
    rayon::current_thread_index().unwrap_or(0) // EXPECT: det-thread-id
}
