// Near-miss clean file for the panic pass: the same call shape as
// panic_tp.rs but every panicking construct replaced with a total
// alternative — unwrap_or, bounds-checked get, saturating arithmetic.
// Scanned under crates/core/src/serve.rs; must produce zero findings.
pub fn serve(requests: &[u64]) -> u64 {
    admit(requests)
}

fn admit(requests: &[u64]) -> u64 {
    let first = requests.first().copied().unwrap_or(0);
    let k = requests.len();
    let edge = requests.get(k.saturating_sub(1)).copied().unwrap_or(0);
    first + edge
}
