// Seeded panic-reachability true positives, scanned under the virtual
// path crates/core/src/serve.rs so `serve` is a request-admission entry
// point. `deep4` sits 5 hops out — beyond the default budget of 4 — so
// its `expect` must NOT be reported (near-miss by distance).
pub fn serve(requests: &[u64]) -> u64 {
    admit(requests)
}

fn admit(requests: &[u64]) -> u64 {
    let first = requests.first().unwrap(); // EXPECT: panic-path
    let k = requests.len();
    let edge = requests[k + 1]; // EXPECT: panic-index
    deep1(first + edge)
}

fn deep1(x: u64) -> u64 {
    deep2(x)
}

fn deep2(x: u64) -> u64 {
    deep3(x)
}

fn deep3(x: u64) -> u64 {
    deep4(x)
}

fn deep4(x: u64) -> u64 {
    x.checked_add(1).expect("overflow")
}
