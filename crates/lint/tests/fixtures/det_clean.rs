// Near-miss clean file for the determinism pass: the same shapes as
// det_tp.rs but deterministic — BTreeMap (sorted iteration by
// construction), a seeded RNG, a worker index threaded in as data.
// Scanned under crates/sz/src/huffman.rs; must produce zero findings.
fn histogram(codes: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for &c in codes {
        *map.entry(c).or_insert(0u64) += 1;
    }
    map.into_iter().collect()
}

fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

fn worker_tag(lane: usize) -> usize {
    lane
}
