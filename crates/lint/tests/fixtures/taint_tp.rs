// Seeded taint-pass true positives. Lines carrying an EXPECT tag must
// be reported with exactly the tagged rules; analyze_fixtures.rs parses
// the tags and compares against the analyzer output. The file is scanned
// under the virtual path crates/sz/src/stream.rs (decode-critical).
fn helper_alloc(count: usize) -> Vec<u8> {
    Vec::with_capacity(count)
}

fn decode(stream: &[u8]) -> Result<(), Error> {
    let mut r = ByteReader::new(stream);
    let n = r.u32_le()? as usize;
    let raw = r.u64_le()? as usize;
    let buf: Vec<u8> = Vec::with_capacity(n); // EXPECT: taint-alloc
    let spec = r.take(raw * 4)?; // EXPECT: taint-arith
    let first = stream[n]; // EXPECT: taint-index
    for _i in 0..raw { // EXPECT: taint-loop
        let _ = first;
    }
    let v = helper_alloc(n); // EXPECT: taint-alloc
    drop((buf, spec, v));
    Ok(())
}
