//! Particle-mesh gravity solver with leapfrog (kick-drift-kick) stepping.
//!
//! This is the HACC-style long-range solver: particles deposit mass onto a
//! periodic grid with cloud-in-cell (CIC) weights, the Poisson equation is
//! solved spectrally (`phi(k) = -delta(k)/k^2`), forces come from the
//! spectral gradient `-i k phi(k)`, and CIC interpolation carries them back
//! to the particles. A short-range particle-particle solver is unnecessary
//! here: a few PM steps on Zel'dovich ICs produce the gravitationally bound
//! clumps the FoF halo analysis needs.

use crate::icgen::Particles;
use cosmo_fft::{fft3_forward, fft3_inverse_real, Complex, Grid3};
use foresight_util::Result;
use rayon::prelude::*;

/// CIC-deposits unit-mass particles onto `grid`, returning the overdensity
/// field `rho/rho_mean - 1`.
pub fn cic_deposit(p: &Particles, grid: Grid3, box_size: f64) -> Vec<f64> {
    let mut rho = vec![0.0f64; grid.len()];
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let inv_cell = nx as f64 / box_size;
    for i in 0..p.len() {
        let gx = p.x[i] as f64 * inv_cell - 0.5;
        let gy = p.y[i] as f64 * inv_cell * (ny as f64 / nx as f64) - 0.5;
        let gz = p.z[i] as f64 * inv_cell * (nz as f64 / nx as f64) - 0.5;
        let (ix, fx) = split(gx, nx);
        let (iy, fy) = split(gy, ny);
        let (iz, fz) = split(gz, nz);
        for (dz, wz) in [(0usize, 1.0 - fz), (1, fz)] {
            for (dy, wy) in [(0usize, 1.0 - fy), (1, fy)] {
                for (dx, wx) in [(0usize, 1.0 - fx), (1, fx)] {
                    let c = grid.index((ix + dx) % nx, (iy + dy) % ny, (iz + dz) % nz);
                    rho[c] += wx * wy * wz;
                }
            }
        }
    }
    let mean = p.len() as f64 / grid.len() as f64;
    if mean > 0.0 {
        for v in rho.iter_mut() {
            *v = *v / mean - 1.0;
        }
    }
    rho
}

/// Splits a (possibly negative) grid coordinate into a wrapped base cell
/// index and the CIC fraction toward the next cell.
#[inline]
fn split(g: f64, n: usize) -> (usize, f64) {
    let fl = g.floor();
    let frac = g - fl;
    let idx = (fl as i64).rem_euclid(n as i64) as usize;
    (idx, frac)
}

/// Spectral force field: three grids holding the acceleration components.
pub struct ForceField {
    /// Acceleration along x on the mesh.
    pub ax: Vec<f64>,
    /// Acceleration along y.
    pub ay: Vec<f64>,
    /// Acceleration along z.
    pub az: Vec<f64>,
}

/// Solves Poisson's equation for `delta` and differentiates spectrally.
///
/// `g_const` folds 4*pi*G*rho_mean into one coupling constant.
pub fn solve_forces(delta: &[f64], grid: Grid3, box_size: f64, g_const: f64) -> Result<ForceField> {
    let spec = fft3_forward(delta, grid)?;
    let mut fx = spec.clone();
    let mut fy = spec.clone();
    let mut fz = spec;
    for iz in 0..grid.nz {
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let idx = grid.index(ix, iy, iz);
                let (kx, ky, kz) = grid.wavenumber(ix, iy, iz, box_size);
                let k2 = kx * kx + ky * ky + kz * kz;
                if k2 == 0.0 {
                    fx[idx] = Complex::ZERO;
                    fy[idx] = Complex::ZERO;
                    fz[idx] = Complex::ZERO;
                    continue;
                }
                // phi(k) = -g delta(k) / k^2; a = -ik phi = ik g delta / k^2.
                let d = fx[idx];
                let id = Complex::new(-d.im, d.re).scale(g_const / k2);
                fx[idx] = id.scale(kx);
                fy[idx] = id.scale(ky);
                fz[idx] = id.scale(kz);
            }
        }
    }
    Ok(ForceField {
        ax: fft3_inverse_real(&fx, grid)?,
        ay: fft3_inverse_real(&fy, grid)?,
        az: fft3_inverse_real(&fz, grid)?,
    })
}

/// CIC-interpolates the force field to one particle position.
fn interp(f: &[f64], grid: Grid3, box_size: f64, x: f64, y: f64, z: f64) -> f64 {
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let inv_cell = nx as f64 / box_size;
    let gx = x * inv_cell - 0.5;
    let gy = y * inv_cell * (ny as f64 / nx as f64) - 0.5;
    let gz = z * inv_cell * (nz as f64 / nx as f64) - 0.5;
    let (ix, fx) = split(gx, nx);
    let (iy, fy) = split(gy, ny);
    let (iz, fz) = split(gz, nz);
    let mut acc = 0.0;
    for (dz, wz) in [(0usize, 1.0 - fz), (1, fz)] {
        for (dy, wy) in [(0usize, 1.0 - fy), (1, fy)] {
            for (dx, wx) in [(0usize, 1.0 - fx), (1, fx)] {
                let c = grid.index((ix + dx) % nx, (iy + dy) % ny, (iz + dz) % nz);
                acc += f[c] * wx * wy * wz;
            }
        }
    }
    acc
}

/// Particle-mesh simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PmOptions {
    /// Timestep in code units.
    pub dt: f64,
    /// Gravitational coupling (4*pi*G*rho_mean folded in).
    pub g_const: f64,
    /// How strongly velocities feed back into drift (1.0 = standard).
    pub velocity_to_drift: f64,
}

impl Default for PmOptions {
    fn default() -> Self {
        Self { dt: 1.0, g_const: 30.0, velocity_to_drift: 1e-2 }
    }
}

/// One kick-drift-kick leapfrog step on the particles (in place).
pub fn step(p: &mut Particles, grid: Grid3, opts: &PmOptions) -> Result<()> {
    let box_size = p.box_size;
    let delta = cic_deposit(p, grid, box_size);
    let forces = solve_forces(&delta, grid, box_size, opts.g_const)?;
    let half = 0.5 * opts.dt;
    let drift = opts.dt * opts.velocity_to_drift;
    let l = box_size as f32;

    // Gather accelerations in parallel, then apply kick+drift. The second
    // half-kick is folded into the next step's first half-kick, which is
    // the standard KDK simplification for snapshot generation.
    let n = p.len();
    let acc: Vec<(f64, f64, f64)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let (px, py, pz) = (p.x[i] as f64, p.y[i] as f64, p.z[i] as f64);
            (
                interp(&forces.ax, grid, box_size, px, py, pz),
                interp(&forces.ay, grid, box_size, px, py, pz),
                interp(&forces.az, grid, box_size, px, py, pz),
            )
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // indexes six parallel arrays
    for i in 0..n {
        let (ax, ay, az) = acc[i];
        p.vx[i] += (ax * half) as f32;
        p.vy[i] += (ay * half) as f32;
        p.vz[i] += (az * half) as f32;
        p.x[i] += p.vx[i] * drift as f32;
        p.y[i] += p.vy[i] * drift as f32;
        p.z[i] += p.vz[i] * drift as f32;
        for c in [&mut p.x[i], &mut p.y[i], &mut p.z[i]] {
            *c = c.rem_euclid(l);
            if *c >= l {
                *c = 0.0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_particles(n_side: usize, box_size: f64) -> Particles {
        let cell = box_size / n_side as f64;
        let mut p = Particles { box_size, ..Default::default() };
        for iz in 0..n_side {
            for iy in 0..n_side {
                for ix in 0..n_side {
                    p.x.push(((ix as f64 + 0.5) * cell) as f32);
                    p.y.push(((iy as f64 + 0.5) * cell) as f32);
                    p.z.push(((iz as f64 + 0.5) * cell) as f32);
                    p.vx.push(0.0);
                    p.vy.push(0.0);
                    p.vz.push(0.0);
                }
            }
        }
        p
    }

    #[test]
    fn cic_conserves_mass() {
        let grid = Grid3::cube(8);
        let mut p = uniform_particles(8, 64.0);
        // Perturb positions so deposits spread over neighbours.
        for (i, v) in p.x.iter_mut().enumerate() {
            *v += ((i % 7) as f32 - 3.0) * 0.7;
        }
        p.wrap();
        let delta = cic_deposit(&p, grid, 64.0);
        // Total overdensity integrates to zero (mass conservation).
        let sum: f64 = delta.iter().sum();
        assert!(sum.abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn uniform_lattice_gives_zero_density_contrast() {
        let grid = Grid3::cube(8);
        let p = uniform_particles(8, 64.0);
        let delta = cic_deposit(&p, grid, 64.0);
        for &d in &delta {
            assert!(d.abs() < 1e-9, "delta {d}");
        }
    }

    #[test]
    fn forces_point_toward_overdensity() {
        // A single clump at the box centre must attract a test particle
        // placed to its +x side (negative x-force).
        let grid = Grid3::cube(16);
        let box_size = 64.0;
        let mut delta = vec![0.0f64; grid.len()];
        delta[grid.index(8, 8, 8)] = 100.0;
        let f = solve_forces(&delta, grid, box_size, 1.0).unwrap();
        // Grid point at (11, 8, 8) is +x of the clump.
        let a = f.ax[grid.index(11, 8, 8)];
        assert!(a < 0.0, "force should attract toward clump, got {a}");
        let a = f.ax[grid.index(5, 8, 8)];
        assert!(a > 0.0, "force should attract from the other side, got {a}");
    }

    #[test]
    fn step_keeps_particles_in_box_and_finite() {
        let grid = Grid3::cube(8);
        let mut p = uniform_particles(8, 64.0);
        for (i, v) in p.x.iter_mut().enumerate() {
            *v += ((i % 5) as f32 - 2.0) * 1.3;
        }
        p.wrap();
        for _ in 0..3 {
            step(&mut p, grid, &PmOptions::default()).unwrap();
        }
        for arr in [&p.x, &p.y, &p.z, &p.vx, &p.vy, &p.vz] {
            for &v in arr {
                assert!(v.is_finite());
            }
        }
        for arr in [&p.x, &p.y, &p.z] {
            for &v in arr {
                assert!((0.0..64.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn gravity_increases_clustering() {
        // Start from a perturbed lattice and verify the density variance
        // grows under PM evolution (gravitational collapse).
        let grid = Grid3::cube(16);
        let box_size = 64.0;
        let mut p = uniform_particles(16, box_size);
        for i in 0..p.len() {
            let t = i as f32;
            p.x[i] += (t * 0.618).sin() * 1.5;
            p.y[i] += (t * 0.314).cos() * 1.5;
            p.z[i] += (t * 0.577).sin() * 1.5;
        }
        p.wrap();
        let var = |p: &Particles| -> f64 {
            let d = cic_deposit(p, grid, box_size);
            d.iter().map(|v| v * v).sum::<f64>() / d.len() as f64
        };
        let v0 = var(&p);
        let opts = PmOptions { dt: 1.0, g_const: 50.0, velocity_to_drift: 2e-2 };
        for _ in 0..8 {
            step(&mut p, grid, &opts).unwrap();
        }
        let v1 = var(&p);
        assert!(v1 > v0, "clustering should grow: {v0} -> {v1}");
    }
}
