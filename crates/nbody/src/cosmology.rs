//! Linear-theory cosmology: the BBKS transfer function and a ΛCDM-like
//! matter power spectrum used to seed initial conditions.
//!
//! The reproduction does not need percent-level cosmology — it needs a
//! *realistically shaped* P(k) (rising as `k^ns` at large scales, turning
//! over at the matter-radiation equality scale, falling as
//! `k^(ns-4) log^2 k` in the UV) so that the downstream power-spectrum and
//! halo analyses react to compression error the way the paper's data does.
//! BBKS (Bardeen, Bond, Kaiser, Szalay 1986) is the standard closed form.

/// Cosmological parameters for the synthetic universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cosmology {
    /// Total matter density parameter.
    pub omega_m: f64,
    /// Hubble parameter in units of 100 km/s/Mpc.
    pub h: f64,
    /// Primordial spectral index.
    pub ns: f64,
    /// Normalization of the power spectrum (arbitrary amplitude; the
    /// pipeline works with ratios, so only the shape matters).
    pub amplitude: f64,
}

impl Default for Cosmology {
    fn default() -> Self {
        // Values in the neighbourhood of the HACC/Nyx runs' WMAP-7-ish
        // cosmology. The amplitude is tuned so that a (256 Mpc/h)^3 box
        // gets delta_rms ~ 1.5 and Zel'dovich displacements of roughly a
        // grid cell — enough nonlinearity for FoF halos to form after a
        // few PM steps.
        Self { omega_m: 0.265, h: 0.71, ns: 0.963, amplitude: 3.0e6 }
    }
}

impl Cosmology {
    /// The BBKS transfer function `T(k)`, `k` in h/Mpc.
    pub fn transfer(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 1.0;
        }
        // Shape parameter Gamma ~ Omega_m h.
        let gamma = self.omega_m * self.h;
        let q = k / gamma;
        let poly = 1.0 + 3.89 * q + (16.1 * q).powi(2) + (5.46 * q).powi(3) + (6.71 * q).powi(4);
        ((1.0 + 2.34 * q).ln() / (2.34 * q)) * poly.powf(-0.25)
    }

    /// Linear matter power spectrum `P(k) = A k^ns T(k)^2`, `k` in h/Mpc.
    pub fn power(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let t = self.transfer(k);
        self.amplitude * k.powf(self.ns) * t * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_limits() {
        let c = Cosmology::default();
        // T -> 1 as k -> 0.
        assert!((c.transfer(1e-6) - 1.0).abs() < 1e-3);
        // T is monotonically decreasing.
        let mut last = 2.0;
        for i in 0..60 {
            let k = 1e-4 * 10f64.powf(i as f64 / 10.0);
            let t = c.transfer(k);
            assert!(t < last, "T must decrease, k={k}");
            assert!(t > 0.0);
            last = t;
        }
    }

    #[test]
    fn power_spectrum_has_a_peak() {
        let c = Cosmology::default();
        // P(k) rises at low k, falls at high k; the turnover sits near the
        // equality scale k_eq ~ 0.01-0.1 h/Mpc for this Gamma.
        let lo = c.power(1e-4);
        let peak_region: f64 =
            (0..40).map(|i| c.power(0.005 + i as f64 * 0.005)).fold(0.0, f64::max);
        let hi = c.power(10.0);
        assert!(peak_region > lo, "peak {peak_region} vs lo {lo}");
        assert!(peak_region > hi, "peak {peak_region} vs hi {hi}");
    }

    #[test]
    fn power_nonnegative_and_zero_at_origin() {
        let c = Cosmology::default();
        assert_eq!(c.power(0.0), 0.0);
        assert_eq!(c.power(-1.0), 0.0);
        for i in 1..100 {
            assert!(c.power(i as f64 * 0.05) >= 0.0);
        }
    }

    #[test]
    fn amplitude_scales_linearly() {
        let mut c = Cosmology::default();
        let p1 = c.power(0.1);
        c.amplitude *= 3.0;
        assert!((c.power(0.1) / p1 - 3.0).abs() < 1e-12);
    }
}
