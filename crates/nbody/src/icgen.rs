//! Initial conditions: Gaussian random density fields and Zel'dovich
//! displacements.
//!
//! Pipeline: draw unit white noise on the grid, FFT, shape by
//! `sqrt(P(k))`, and inverse-FFT to get a Gaussian overdensity field
//! `delta(x)` with the requested spectrum (the real-space-noise route makes
//! Hermitian symmetry automatic). The Zel'dovich approximation then turns
//! the field into particles: displacement `psi(k) = i k / k^2 * delta(k)`
//! moves each particle off its lattice point, and velocities are
//! proportional to the displacement.

use crate::cosmology::Cosmology;
use cosmo_fft::{fft3_forward, fft3_inverse_real, Complex, Grid3};
use foresight_util::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A periodic box of particles (structure-of-arrays, HACC-style).
#[derive(Debug, Clone, Default)]
pub struct Particles {
    /// Positions, each in `[0, box_size)`.
    pub x: Vec<f32>,
    /// Positions, each in `[0, box_size)`.
    pub y: Vec<f32>,
    /// Positions, each in `[0, box_size)`.
    pub z: Vec<f32>,
    /// Velocities (km/s-like code units).
    pub vx: Vec<f32>,
    /// Velocities.
    pub vy: Vec<f32>,
    /// Velocities.
    pub vz: Vec<f32>,
    /// Comoving box side length (Mpc/h-like code units).
    pub box_size: f64,
}

impl Particles {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the box holds no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Wraps every coordinate back into `[0, box_size)`.
    pub fn wrap(&mut self) {
        let l = self.box_size as f32;
        for arr in [&mut self.x, &mut self.y, &mut self.z] {
            for v in arr.iter_mut() {
                *v = v.rem_euclid(l);
                // rem_euclid can return exactly l for tiny negatives.
                if *v >= l {
                    *v = 0.0;
                }
            }
        }
    }
}

/// Generates a Gaussian random overdensity field with spectrum `P(k)`.
///
/// Returns `delta(x)` on the grid (mean zero). `box_size` is in the same
/// length units as `1/k` for the cosmology's `power` function.
pub fn gaussian_field(
    cosmo: &Cosmology,
    grid: Grid3,
    box_size: f64,
    seed: u64,
) -> Result<Vec<f64>> {
    if !grid.is_pow2() {
        return Err(Error::invalid("IC grid extents must be powers of two"));
    }
    let n = grid.len();
    let mut rng = StdRng::seed_from_u64(seed);
    // Unit white noise: after FFT each mode has expected |W(k)|^2 = n.
    let noise: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
    let mut spec = fft3_forward(&noise, grid)?;
    // Scale each mode by sqrt(P(k)) with the discretization factor
    // sqrt(n / V): then <|delta_k|^2> / n^2 * V = P(k) as analysis expects.
    let vol = box_size.powi(3);
    let norm = (n as f64 / vol).sqrt();
    for iz in 0..grid.nz {
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let (kx, ky, kz) = grid.wavenumber(ix, iy, iz, box_size);
                let k = (kx * kx + ky * ky + kz * kz).sqrt();
                let amp = cosmo.power(k).sqrt() * norm;
                let idx = grid.index(ix, iy, iz);
                spec[idx] = spec[idx].scale(amp);
            }
        }
    }
    spec[0] = Complex::ZERO; // zero mean
    fft3_inverse_real(&spec, grid)
}

/// Box-Muller standard normal (keeps `rand` usage version-agnostic).
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Options for [`zeldovich`].
#[derive(Debug, Clone, Copy)]
pub struct ZeldovichOptions {
    /// Linear growth amplitude applied to displacements (bigger = more
    /// clustering; ~2-4 grid cells of RMS displacement forms rich halos).
    pub growth: f64,
    /// Velocity scale in output units per unit displacement (sets the
    /// HACC-like (-1e4, 1e4) km/s range).
    pub velocity_scale: f64,
}

impl Default for ZeldovichOptions {
    fn default() -> Self {
        Self { growth: 1.0, velocity_scale: 100.0 }
    }
}

/// Builds a particle load by Zel'dovich-displacing a uniform lattice.
///
/// One particle per grid cell; the same `delta` grid can then seed the Nyx
/// field synthesis so both datasets describe the same universe, mirroring
/// the paper's "mutually verifiable" HACC/Nyx setup.
pub fn zeldovich(
    delta: &[f64],
    grid: Grid3,
    box_size: f64,
    opts: ZeldovichOptions,
) -> Result<Particles> {
    if delta.len() != grid.len() {
        return Err(Error::invalid("delta grid does not match dims"));
    }
    let spec = fft3_forward(delta, grid)?;
    // psi(k) = i k / k^2 delta(k), component-wise.
    let mut psi = [spec.clone(), spec.clone(), spec];
    for iz in 0..grid.nz {
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let (kx, ky, kz) = grid.wavenumber(ix, iy, iz, box_size);
                let k2 = kx * kx + ky * ky + kz * kz;
                let idx = grid.index(ix, iy, iz);
                if k2 == 0.0 {
                    for p in psi.iter_mut() {
                        p[idx] = Complex::ZERO;
                    }
                } else {
                    let d = psi[0][idx];
                    // i * d = (-d.im, d.re)
                    let id = Complex::new(-d.im, d.re);
                    psi[0][idx] = id.scale(kx / k2);
                    psi[1][idx] = id.scale(ky / k2);
                    psi[2][idx] = id.scale(kz / k2);
                }
            }
        }
    }
    let disp: Vec<Vec<f64>> = psi
        .into_iter()
        .map(|s| fft3_inverse_real(&s, grid))
        .collect::<Result<_>>()?;

    let n = grid.len();
    let mut p = Particles {
        x: Vec::with_capacity(n),
        y: Vec::with_capacity(n),
        z: Vec::with_capacity(n),
        vx: Vec::with_capacity(n),
        vy: Vec::with_capacity(n),
        vz: Vec::with_capacity(n),
        box_size,
    };
    let cell = box_size / grid.nx as f64;
    for iz in 0..grid.nz {
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let idx = grid.index(ix, iy, iz);
                let (dx, dy, dz) = (
                    opts.growth * disp[0][idx],
                    opts.growth * disp[1][idx],
                    opts.growth * disp[2][idx],
                );
                p.x.push(((ix as f64 + 0.5) * cell + dx) as f32);
                p.y.push(((iy as f64 + 0.5) * cell + dy) as f32);
                p.z.push(((iz as f64 + 0.5) * cell + dz) as f32);
                p.vx.push((opts.velocity_scale * dx) as f32);
                p.vy.push((opts.velocity_scale * dy) as f32);
                p.vz.push((opts.velocity_scale * dz) as f32);
            }
        }
    }
    p.wrap();
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_field_has_zero_mean_and_structure() {
        let grid = Grid3::cube(32);
        let f = gaussian_field(&Cosmology::default(), grid, 256.0, 42).unwrap();
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 1e-8, "mean {mean}");
        let var: f64 = f.iter().map(|v| v * v).sum::<f64>() / f.len() as f64;
        assert!(var > 1e-6, "field should have power, var={var}");
    }

    #[test]
    fn gaussian_field_is_deterministic_per_seed() {
        let grid = Grid3::cube(16);
        let a = gaussian_field(&Cosmology::default(), grid, 128.0, 7).unwrap();
        let b = gaussian_field(&Cosmology::default(), grid, 128.0, 7).unwrap();
        let c = gaussian_field(&Cosmology::default(), grid, 128.0, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_non_pow2_grid() {
        let grid = Grid3::new(12, 16, 16);
        assert!(gaussian_field(&Cosmology::default(), grid, 100.0, 1).is_err());
    }

    #[test]
    fn zeldovich_produces_in_box_particles() {
        let grid = Grid3::cube(16);
        let f = gaussian_field(&Cosmology::default(), grid, 256.0, 3).unwrap();
        let p = zeldovich(&f, grid, 256.0, ZeldovichOptions::default()).unwrap();
        assert_eq!(p.len(), 16 * 16 * 16);
        for arr in [&p.x, &p.y, &p.z] {
            for &v in arr {
                assert!((0.0..256.0).contains(&v), "coordinate {v} out of box");
            }
        }
        // Velocities correlate with displacement: nonzero spread.
        let vrms: f64 =
            p.vx.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / p.len() as f64;
        assert!(vrms > 0.0);
    }

    #[test]
    fn zeldovich_displacements_cluster_particles() {
        // With growth, the CIC density of displaced particles must have
        // larger variance than a uniform lattice (which has ~zero).
        let grid = Grid3::cube(16);
        let f = gaussian_field(&Cosmology::default(), grid, 256.0, 9).unwrap();
        let opts = ZeldovichOptions { growth: 2.0, velocity_scale: 100.0 };
        let p = zeldovich(&f, grid, 256.0, opts).unwrap();
        // RMS displacement from the lattice should be a sizeable fraction
        // of a grid cell (cell = 16 here), otherwise no structure forms.
        let cell = 256.0 / 16.0;
        let mut s = 0.0f64;
        for iz in 0..16usize {
            for iy in 0..16usize {
                for ix in 0..16usize {
                    let idx = ix + 16 * (iy + 16 * iz);
                    let lx = (ix as f64 + 0.5) * cell;
                    let mut d = p.x[idx] as f64 - lx;
                    if d > 128.0 {
                        d -= 256.0;
                    }
                    if d < -128.0 {
                        d += 256.0;
                    }
                    s += d * d;
                }
            }
        }
        let rms = (s / p.len() as f64).sqrt();
        assert!(rms > 0.1 * cell, "rms displacement {rms} too small vs cell {cell}");
    }

    #[test]
    fn wrap_handles_out_of_range() {
        let mut p = Particles {
            x: vec![-0.5, 256.0, 300.0],
            y: vec![0.0, 1.0, 2.0],
            z: vec![0.0, 1.0, 2.0],
            vx: vec![0.0; 3],
            vy: vec![0.0; 3],
            vz: vec![0.0; 3],
            box_size: 256.0,
        };
        p.wrap();
        for &v in &p.x {
            assert!((0.0..256.0).contains(&v));
        }
        assert!((p.x[0] - 255.5).abs() < 1e-3);
    }
}
