//! Particle-mesh N-body simulator substrate.
//!
//! The paper's datasets come from HACC (a trillion-particle N-body code)
//! and Nyx (an AMR hydro code). Neither the codes nor their snapshots are
//! available here, so this crate synthesizes physically structured
//! replacements:
//!
//! 1. [`cosmology`] — a BBKS ΛCDM-shaped linear power spectrum;
//! 2. [`icgen`] — Gaussian random fields with that spectrum, turned into a
//!    particle load by Zel'dovich displacement;
//! 3. [`pm`] — a cloud-in-cell particle-mesh gravity solver with leapfrog
//!    stepping that evolves the load into a clustered, halo-rich state.
//!
//! `cosmo-data` builds the HACC-like (1-D particle arrays) and Nyx-like
//! (3-D field grids) datasets from these primitives.

#![forbid(unsafe_code)]

pub mod cosmology;
pub mod icgen;
pub mod pm;

pub use cosmology::Cosmology;
pub use icgen::{gaussian_field, zeldovich, Particles, ZeldovichOptions};
pub use pm::{cic_deposit, solve_forces, step, PmOptions};

use cosmo_fft::Grid3;
use foresight_util::Result;

/// Convenience driver: ICs + a few PM steps, returning a clustered box.
///
/// `n_side` sets both the particle lattice and the PM mesh (one particle
/// per cell). `steps` PM iterations sharpen Zel'dovich's mild clustering
/// into FoF-detectable halos; ~10 steps gives a rich halo population.
pub fn simulate_universe(
    n_side: usize,
    box_size: f64,
    seed: u64,
    steps: usize,
) -> Result<Particles> {
    let grid = Grid3::cube(n_side);
    let cosmo = Cosmology::default();
    let delta = gaussian_field(&cosmo, grid, box_size, seed)?;
    // Calibrated so ~10 steps on a 32^3 load yield O(100) FoF halos with
    // the standard b = 0.2 x mean-spacing linking length.
    let opts = ZeldovichOptions { growth: 1.0, velocity_scale: 150.0 };
    let mut p = zeldovich(&delta, grid, box_size, opts)?;
    let pm_opts = PmOptions { dt: 1.0, g_const: 100.0, velocity_to_drift: 2e-3 };
    for _ in 0..steps {
        step(&mut p, grid, &pm_opts)?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_universe_end_to_end() {
        let p = simulate_universe(16, 256.0, 1234, 3).unwrap();
        assert_eq!(p.len(), 4096);
        assert!(p.x.iter().all(|v| v.is_finite() && (0.0..256.0).contains(v)));
        assert!(p.vx.iter().all(|v| v.is_finite()));
        // Velocities should have developed a spread.
        let s = foresight_util::stats::summarize(&p.vx);
        assert!(s.range() > 1.0, "velocity range {}", s.range());
    }
}
