//! ZFP compressed-stream container and parallel drivers.
//!
//! Fixed-rate mode (the only mode cuZFP supported at the time of the paper,
//! §IV-B-1) gives every block exactly `rate * 4^d` bits, so block `i`
//! starts at bit `i * maxbits` and blocks (de)compress in parallel with no
//! side table. Fixed-precision and fixed-accuracy modes produce
//! variable-length blocks; their per-block bit lengths are stored in the
//! header so decoding stays parallel.
//!
//! Partial edge blocks are padded by replicating the nearest interior
//! sample, which avoids injecting artificial discontinuities.

use crate::codec::{self, HEADER_BITS, INTPREC};
use crate::config::{Dims3, ZfpConfig, ZfpMode};
use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::crc::crc32;
use foresight_util::{telemetry, ByteReader, Error, Result};
use rayon::prelude::*;

/// Stream magic tag identifying a ZFP stream; exported so containers
/// and auto-detecting decoders match streams without private knowledge.
pub const MAGIC: &[u8; 4] = b"ZFPR";
const VERSION: u8 = 2;
/// Byte offset of the trailing header CRC; the CRC covers `[0, HDR_CRC_AT)`.
const HDR_CRC_AT: usize = 4 + 1 + 1 + 1 + 1 + 24 + 8 + 8 + 8 + 4;
const HDR: usize = HDR_CRC_AT + 4;
/// Upper bound on any single extent read from an untrusted header.
const MAX_EXTENT: u64 = 1 << 40;

/// A block's position in the (up to) 3-D block grid.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockPos {
    pub origin: [usize; 3],
}

pub(crate) fn block_grid(dims: Dims3) -> (Vec<BlockPos>, u8) {
    let d = dims.ndim();
    let [nx, ny, nz] = dims.extents();
    let mut blocks = Vec::new();
    let step = |n: usize| n.div_ceil(4);
    for bz in 0..step(nz) {
        for by in 0..step(ny) {
            for bx in 0..step(nx) {
                blocks.push(BlockPos { origin: [bx * 4, by * 4, bz * 4] });
            }
        }
    }
    (blocks, d)
}

/// Gathers a `4^d` block, replicating edge samples for partial blocks.
fn gather(data: &[f32], dims: Dims3, pos: &BlockPos, d: u8, out: &mut [f32]) {
    let [nx, ny, nz] = dims.extents();
    let (ex, ey, ez) = match d {
        1 => (4usize, 1usize, 1usize),
        2 => (4, 4, 1),
        _ => (4, 4, 4),
    };
    let mut i = 0;
    for dz in 0..ez {
        let z = (pos.origin[2] + dz).min(nz - 1);
        for dy in 0..ey {
            let y = (pos.origin[1] + dy).min(ny - 1);
            let row = nx * (y + ny * z);
            for dx in 0..ex {
                let x = (pos.origin[0] + dx).min(nx - 1);
                out[i] = data[row + x];
                i += 1;
            }
        }
    }
}

/// Scatters decoded samples back, skipping replicated padding.
pub(crate) fn scatter(block: &[f32], dims: Dims3, pos: &BlockPos, d: u8, out: &mut [f32]) {
    let [nx, ny, nz] = dims.extents();
    let (ex, ey, ez) = match d {
        1 => (4usize, 1usize, 1usize),
        2 => (4, 4, 1),
        _ => (4, 4, 4),
    };
    let mut i = 0;
    for dz in 0..ez {
        let z = pos.origin[2] + dz;
        for dy in 0..ey {
            let y = pos.origin[1] + dy;
            for dx in 0..ex {
                let x = pos.origin[0] + dx;
                if x < nx && y < ny && z < nz {
                    out[x + nx * (y + ny * z)] = block[i];
                }
                i += 1;
            }
        }
    }
}

/// Per-mode worst-case bits any single block may occupy — the staging
/// slot size a GPU encoder allocates per block before compaction. Exact
/// (not just an upper bound) in fixed-rate mode.
pub(crate) fn block_bit_cap(mode: &ZfpMode, d: u8) -> u32 {
    let cells = codec::block_cells(d) as u32;
    match mode {
        ZfpMode::FixedRate(rate) => rate_maxbits(*rate, cells as usize),
        _ => HEADER_BITS + INTPREC * (cells + 2),
    }
}

/// Per-mode encoding parameters for one block.
fn block_params(cfg: &ZfpConfig, d: u8, values: &[f32]) -> (u32, u32, bool) {
    let cells = codec::block_cells(d) as u32;
    match cfg.mode {
        ZfpMode::FixedRate(rate) => {
            let maxbits = ((rate * cells as f64).round() as u32).max(HEADER_BITS + 1);
            (maxbits, INTPREC, true)
        }
        ZfpMode::FixedPrecision(p) => {
            (HEADER_BITS + INTPREC * (cells + 2), p.min(INTPREC), false)
        }
        ZfpMode::FixedAccuracy(tol) => {
            let mut vmax = 0.0f32;
            for &v in values {
                if v.is_finite() {
                    vmax = vmax.max(v.abs());
                }
            }
            let maxprec = codec::maxprec_for_tolerance(vmax, tol, d);
            (HEADER_BITS + INTPREC * (cells + 2), maxprec, false)
        }
    }
}

/// Compresses `data` (layout per [`Dims3`]) with `cfg`.
pub fn compress(data: &[f32], dims: Dims3, cfg: &ZfpConfig) -> Result<Vec<u8>> {
    cfg.validate()?;
    if data.len() != dims.len() {
        return Err(Error::invalid(format!(
            "data length {} does not match dims {:?}",
            data.len(),
            dims
        )));
    }
    let (blocks, d) = block_grid(dims);

    // Encode every block independently (parallel), then splice bit-exactly.
    let encode = telemetry::span("zfp.encode");
    let encoded: Vec<(Vec<u8>, u32)> =
        blocks.par_iter().map(|pos| encode_one(data, dims, pos, d, cfg)).collect();
    drop(encode);

    Ok(assemble(dims, cfg, &encoded))
}

/// Gathers and encodes one block, returning its bytes and exact bit count.
/// Shared by the CPU driver and the traced device path.
pub(crate) fn encode_one(
    data: &[f32],
    dims: Dims3,
    pos: &BlockPos,
    d: u8,
    cfg: &ZfpConfig,
) -> (Vec<u8>, u32) {
    let cells = codec::block_cells(d);
    let mut vals = vec![0.0f32; cells];
    gather(data, dims, pos, d, &mut vals);
    let (maxbits, maxprec, pad) = block_params(cfg, d, &vals);
    let mut w = BitWriter::new();
    let used = codec::encode_block(&vals, d, maxbits, maxprec, pad, &mut w);
    (w.into_bytes(), used)
}

/// Splices encoded blocks into the container (payload, header, length
/// table). Shared verbatim by the CPU driver and the traced device path
/// so both produce bit-identical streams.
pub(crate) fn assemble(dims: Dims3, cfg: &ZfpConfig, encoded: &[(Vec<u8>, u32)]) -> Vec<u8> {
    let mut payload = BitWriter::with_capacity(encoded.iter().map(|(b, _)| b.len()).sum());
    for (bytes, nbits) in encoded {
        append_bits(&mut payload, bytes, *nbits as u64);
    }
    let payload = payload.into_bytes();
    let crc = crc32(&payload);

    // lint: allow(alloc-arith) — encoder-side capacity hint on an already-materialized payload
    let mut out = Vec::with_capacity(payload.len() + 64 + encoded.len() * 4);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(cfg.mode.tag());
    out.push(dims.ndim());
    out.push(0); // reserved
    for e in dims.extents() {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    out.extend_from_slice(&cfg.mode.param().to_le_bytes());
    out.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    let hcrc = crc32(&out);
    out.extend_from_slice(&hcrc.to_le_bytes());
    if !matches!(cfg.mode, ZfpMode::FixedRate(_)) {
        for (_, nbits) in encoded {
            out.extend_from_slice(&nbits.to_le_bytes());
        }
    }
    out.extend_from_slice(&payload);
    out
}

/// Appends the first `nbits` bits of `bytes` to `w`.
fn append_bits(w: &mut BitWriter, bytes: &[u8], nbits: u64) {
    let full = (nbits / 8) as usize;
    for &b in &bytes[..full] {
        w.write_bits(b as u64, 8);
    }
    let rem = (nbits % 8) as u32;
    if rem > 0 {
        w.write_bits(bytes[full] as u64, rem);
    }
}

/// Parsed stream header.
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Logical dimensions.
    pub dims: Dims3,
    /// Mode with its parameter.
    pub mode: ZfpMode,
    nblocks: u64,
    payload_len: u64,
    crc: u32,
    lens_offset: usize,
}

/// Parses a stream header.
///
/// Every read is bounds-checked ([`ByteReader`]) and the whole header is
/// protected by a trailing CRC, so a truncated or bit-flipped header
/// surfaces as [`Error::Corrupt`] instead of a panic or a huge allocation.
pub fn info(stream: &[u8]) -> Result<StreamInfo> {
    let mut r = ByteReader::new(stream);
    r.expect_magic(MAGIC, "ZFPR stream")?;
    let version = r.u8()?;
    if version != VERSION {
        return Err(Error::corrupt(format!("unsupported version {version}")));
    }
    let mode_tag = r.u8()?;
    let ndim = r.u8()?;
    r.u8()?; // reserved
    let nx = r.u64_le_capped(MAX_EXTENT, "x extent")?;
    let ny = r.u64_le_capped(MAX_EXTENT, "y extent")?;
    let nz = r.u64_le_capped(MAX_EXTENT, "z extent")?;
    let dims = match ndim {
        1 => Dims3::D1(nx),
        2 => Dims3::D2(nx, ny),
        3 => Dims3::D3(nx, ny, nz),
        v => return Err(Error::corrupt(format!("bad ndim {v}"))),
    };
    if dims.checked_len().is_none() {
        return Err(Error::corrupt("dims product overflows"));
    }
    let param = r.f64_le()?;
    let mode = ZfpMode::from_tag(mode_tag, param)
        .ok_or_else(|| Error::corrupt(format!("bad mode {mode_tag}")))?;
    if (ZfpConfig { mode }).validate().is_err() {
        return Err(Error::corrupt(format!("bad mode parameter {param}")));
    }
    let nblocks = r.u64_le()?;
    let payload_len = r.u64_le()?;
    let crc = r.u32_le()?;
    debug_assert_eq!(r.pos(), HDR_CRC_AT);
    let hcrc = r.u32_le()?;
    let hdr = stream.get(..HDR_CRC_AT).ok_or_else(|| Error::corrupt("truncated header"))?;
    if crc32(hdr) != hcrc {
        return Err(Error::corrupt("header CRC mismatch"));
    }
    Ok(StreamInfo { dims, mode, nblocks, payload_len, crc, lens_offset: HDR })
}

/// Bits per block at a fixed rate; must match `block_params`.
fn rate_maxbits(rate: f64, cells: usize) -> u32 {
    ((rate * cells as f64).round() as u32).max(HEADER_BITS + 1)
}

/// Everything needed to decode blocks independently: the block grid,
/// per-block bit spans, and where the payload starts in the stream.
pub(crate) struct DecodePlan {
    pub blocks: Vec<BlockPos>,
    pub d: u8,
    pub fixed_rate: bool,
    pub bit_offsets: Vec<u64>,
    pub bit_lens: Vec<u32>,
    pub payload_start: usize,
    pub n_values: usize,
}

/// Validates the header against the stream and builds the decode plan,
/// cross-checking every size before any dims-driven allocation.
pub(crate) fn prepare_decode(inf: &StreamInfo, stream: &[u8]) -> Result<DecodePlan> {
    let dims = inf.dims;
    let d = dims.ndim();
    let cells = codec::block_cells(d);

    // Check the claimed block count arithmetically BEFORE materializing the
    // block grid or the length table, so a forged header cannot force a
    // huge allocation. The formula mirrors `block_grid`'s nesting.
    let expected_blocks: u128 =
        dims.extents().iter().map(|&n| (n as u128).div_ceil(4)).product();
    if expected_blocks != inf.nblocks as u128 {
        return Err(Error::corrupt("block count mismatch"));
    }
    // Resolving the mode here (rather than re-matching later) keeps the
    // fixed-rate bit math in one place with no unreachable arm.
    let rate_bits = match inf.mode {
        ZfpMode::FixedRate(rate) => Some(rate_maxbits(rate, cells)),
        _ => None,
    };
    let fixed_rate = rate_bits.is_some();
    // Total stream length must match header + length table + payload
    // exactly; this bounds nblocks by the bytes we actually hold.
    let lens_bytes: u128 = if fixed_rate { 0 } else { inf.nblocks as u128 * 4 };
    let payload_start_wide = inf.lens_offset as u128 + lens_bytes;
    if payload_start_wide + inf.payload_len as u128 != stream.len() as u128 {
        return Err(Error::corrupt("payload length mismatch"));
    }
    let payload_start = payload_start_wide as usize;

    let (blocks, _) = block_grid(dims);
    debug_assert_eq!(blocks.len() as u128, expected_blocks);

    // Per-block bit offsets.
    let (bit_offsets, bit_lens): (Vec<u64>, Vec<u32>) = if let Some(maxbits) = rate_bits {
        let offs = (0..blocks.len() as u64).map(|i| i * maxbits as u64).collect();
        (offs, vec![maxbits; blocks.len()])
    } else {
        let table = stream
            .get(inf.lens_offset..payload_start)
            .ok_or_else(|| Error::corrupt("truncated length table"))?;
        let mut lr = ByteReader::new(table);
        let mut lens = Vec::with_capacity(blocks.len());
        for _ in 0..blocks.len() {
            lens.push(lr.u32_le()?);
        }
        let mut offs = Vec::with_capacity(blocks.len());
        let mut acc = 0u64;
        for &l in &lens {
            offs.push(acc);
            acc += l as u64;
        }
        (offs, lens)
    };

    let payload =
        stream.get(payload_start..).ok_or_else(|| Error::corrupt("truncated payload"))?;
    if crc32(payload) != inf.crc {
        return Err(Error::corrupt("payload CRC mismatch"));
    }
    let total_bits: u64 = bit_lens.iter().map(|&l| l as u64).sum();
    if total_bits.div_ceil(8) > inf.payload_len {
        return Err(Error::corrupt("payload shorter than block bits"));
    }

    let n_values =
        dims.checked_len().ok_or_else(|| Error::corrupt("dims product overflows"))?;
    Ok(DecodePlan {
        blocks,
        d,
        fixed_rate,
        bit_offsets,
        bit_lens,
        payload_start,
        n_values,
    })
}

/// Decodes one block's `4^d` values from the payload. Shared by the CPU
/// driver and the traced device path.
pub(crate) fn decode_one(
    inf: &StreamInfo,
    plan: &DecodePlan,
    payload: &[u8],
    bi: usize,
) -> Result<Vec<f32>> {
    let d = plan.d;
    let bit_off = plan.bit_offsets[bi];
    let byte = (bit_off / 8) as usize;
    let skip = (bit_off % 8) as u32;
    let tail = payload.get(byte..).ok_or_else(|| Error::corrupt("block bits out of range"))?;
    let mut r = BitReader::new(tail);
    r.read_bits(skip)?;
    let mut vals = vec![0.0f32; codec::block_cells(d)];
    let (maxbits, maxprec) = match inf.mode {
        ZfpMode::FixedRate(_) => (plan.bit_lens[bi], INTPREC),
        ZfpMode::FixedPrecision(p) => (plan.bit_lens[bi], p.min(INTPREC)),
        // Accuracy mode derives per-block precision from emax; the
        // encoder stored the exact bit length, so cap by it and let
        // the codec recompute maxprec from the stream's emax.
        ZfpMode::FixedAccuracy(tol) => {
            let used = codec::peek_maxprec_for_accuracy(tail, skip, tol, d)?;
            (plan.bit_lens[bi], used)
        }
    };
    let consumed = codec::decode_block(&mut r, d, maxbits, maxprec, plan.fixed_rate, &mut vals)?;
    if !plan.fixed_rate && consumed != plan.bit_lens[bi] {
        return Err(Error::corrupt(format!(
            "block {bi} consumed {consumed} bits, expected {}",
            plan.bit_lens[bi]
        )));
    }
    Ok(vals)
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<(Vec<f32>, Dims3)> {
    let inf = info(stream)?;
    let dims = inf.dims;
    let plan = prepare_decode(&inf, stream)?;
    let payload = stream
        .get(plan.payload_start..)
        .ok_or_else(|| Error::corrupt("truncated payload"))?;

    let mut out = vec![0.0f32; plan.n_values];
    // Decode blocks in parallel into local buffers, then scatter serially
    // (scatter touches interleaved rows, so keep it simple and safe).
    let decode = telemetry::span("zfp.decode");
    let decoded: Vec<Result<Vec<f32>>> = plan
        .blocks
        .par_iter()
        .enumerate()
        .map(|(bi, _)| decode_one(&inf, &plan, payload, bi))
        .collect();
    for (bi, dec) in decoded.into_iter().enumerate() {
        scatter(&dec?, dims, &plan.blocks[bi], plan.d, &mut out);
    }
    drop(decode);
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_3d(n: usize) -> Vec<f32> {
        (0..n * n * n)
            .map(|i| {
                let x = (i % n) as f32 / n as f32;
                let y = ((i / n) % n) as f32 / n as f32;
                let z = (i / (n * n)) as f32 / n as f32;
                ((x * 6.3).sin() + (y * 4.1).cos() + z * 2.0) * 100.0
            })
            .collect()
    }

    fn psnr(orig: &[f32], rec: &[f32]) -> f64 {
        let range = {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in orig {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (hi - lo) as f64
        };
        let mse: f64 = orig
            .iter()
            .zip(rec)
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / orig.len() as f64;
        20.0 * range.log10() - 10.0 * mse.log10()
    }

    #[test]
    fn fixed_rate_sizes_are_exact() {
        let data = smooth_3d(16);
        for rate in [1.0, 2.0, 4.0, 8.0] {
            let stream = compress(&data, Dims3::D3(16, 16, 16), &ZfpConfig::rate(rate)).unwrap();
            let blocks = 64usize; // (16/4)^3
            let expected_payload = (blocks as u64 * (rate * 64.0) as u64).div_ceil(8);
            let inf = info(&stream).unwrap();
            assert_eq!(inf.payload_len, expected_payload, "rate {rate}");
            let (rec, dims) = decompress(&stream).unwrap();
            assert_eq!(dims, Dims3::D3(16, 16, 16));
            assert_eq!(rec.len(), data.len());
        }
    }

    #[test]
    fn quality_improves_with_rate() {
        let data = smooth_3d(16);
        let mut last_psnr = 0.0;
        for rate in [2.0, 4.0, 8.0, 16.0] {
            let stream = compress(&data, Dims3::D3(16, 16, 16), &ZfpConfig::rate(rate)).unwrap();
            let (rec, _) = decompress(&stream).unwrap();
            let p = psnr(&data, &rec);
            assert!(p > last_psnr, "rate {rate}: psnr {p} <= {last_psnr}");
            last_psnr = p;
        }
        assert!(last_psnr > 80.0, "rate 16 psnr {last_psnr}");
    }

    #[test]
    fn non_multiple_of_four_extents() {
        for dims in [Dims3::D3(13, 7, 5), Dims3::D2(17, 9), Dims3::D1(101)] {
            let data: Vec<f32> = (0..dims.len()).map(|i| (i as f32 * 0.31).sin() * 42.0).collect();
            let stream = compress(&data, dims, &ZfpConfig::rate(16.0)).unwrap();
            let (rec, rdims) = decompress(&stream).unwrap();
            assert_eq!(rdims, dims);
            let p = psnr(&data, &rec);
            assert!(p > 60.0, "{dims:?}: psnr {p}");
        }
    }

    #[test]
    fn fixed_precision_roundtrip() {
        let data = smooth_3d(8);
        let stream =
            compress(&data, Dims3::D3(8, 8, 8), &ZfpConfig::precision(24)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        assert!(psnr(&data, &rec) > 90.0);
    }

    #[test]
    fn fixed_accuracy_bounds_error() {
        let data = smooth_3d(8);
        for tol in [1.0f64, 0.1, 0.01] {
            let stream =
                compress(&data, Dims3::D3(8, 8, 8), &ZfpConfig::accuracy(tol)).unwrap();
            let (rec, _) = decompress(&stream).unwrap();
            for (a, b) in data.iter().zip(&rec) {
                assert!(
                    ((a - b) as f64).abs() <= tol,
                    "tol {tol}: {a} vs {b} diff {}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn zero_field_is_tiny_in_precision_mode() {
        let data = vec![0.0f32; 4096];
        let stream = compress(&data, Dims3::D1(4096), &ZfpConfig::precision(32)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        assert_eq!(rec, data);
        // 1 bit per 4-value block plus headers.
        assert!(stream.len() < 4096 + 1024, "len {}", stream.len());
    }

    #[test]
    fn corrupt_and_truncated_streams_error() {
        let data = smooth_3d(8);
        let stream = compress(&data, Dims3::D3(8, 8, 8), &ZfpConfig::rate(8.0)).unwrap();
        let mut bad = stream.clone();
        let n = bad.len();
        bad[n - 3] ^= 0x40;
        assert!(decompress(&bad).is_err());
        assert!(decompress(&stream[..stream.len() - 1]).is_err());
        assert!(decompress(&stream[..16]).is_err());
        assert!(decompress(b"nope").is_err());
        let mut bad = stream;
        bad[0] = b'Q';
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(compress(&[0.0; 5], Dims3::D1(6), &ZfpConfig::rate(8.0)).is_err());
    }

    #[test]
    fn compression_ratio_matches_rate() {
        // Rate r on 32-bit data gives ratio ~ 32/r (plus constant header).
        let data = smooth_3d(32);
        let stream = compress(&data, Dims3::D3(32, 32, 32), &ZfpConfig::rate(4.0)).unwrap();
        let ratio = (data.len() * 4) as f64 / stream.len() as f64;
        assert!((ratio - 8.0).abs() < 0.5, "ratio {ratio}");
    }
}
