//! ZFP-style transform-based lossy compressor.
//!
//! A from-scratch Rust reproduction of the cuZFP compressor evaluated in
//! *Understanding GPU-Based Lossy Compression for Extreme-Scale Cosmological
//! Simulations* (Jin et al., 2020). The algorithm follows Lindstrom's ZFP:
//! the array is cut into `4^d` blocks; each block is scaled to a common
//! exponent, decorrelated with a reversible integer lifting transform,
//! reordered by total sequency, mapped to negabinary, and emitted as
//! MSB-first bit planes with unary group testing.
//!
//! [`ZfpMode::FixedRate`] spends exactly `rate` bits per value — the only
//! mode the paper's cuZFP supported, and the one all cuZFP experiments use.
//! Fixed-precision and fixed-accuracy modes are provided for parity with
//! the CPU library.
//!
//! # Example
//!
//! ```
//! use lossy_zfp::{compress, decompress, Dims3, ZfpConfig};
//!
//! let data: Vec<f32> = (0..64 * 64).map(|i| (i as f32 * 0.02).sin()).collect();
//! let stream = compress(&data, Dims3::D2(64, 64), &ZfpConfig::rate(8.0)).unwrap();
//! let (recon, dims) = decompress(&stream).unwrap();
//! assert_eq!(dims, Dims3::D2(64, 64));
//! assert_eq!(recon.len(), data.len());
//! ```

#![forbid(unsafe_code)]

pub mod codec;
pub mod config;
pub mod gpu_exec;
pub mod lift;
pub mod stream;

pub use config::{Dims3, ZfpConfig, ZfpMode};
pub use stream::{compress, decompress, info, StreamInfo, MAGIC};
