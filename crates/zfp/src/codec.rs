//! Per-block ZFP codec: fixed-point cast, sequency reorder, and the
//! embedded bit-plane coder.
//!
//! A block is `4^d` values (d = 1, 2, 3). Encoding steps:
//!
//! 1. **Common-exponent cast** — find the block's largest magnitude, derive
//!    exponent `emax` with `max < 2^emax`, and scale every value by
//!    `2^(30 - emax)` into `i32` fixed point (so `|q| < 2^30`, leaving
//!    headroom for the transform).
//! 2. **Decorrelating transform** — [`crate::lift`].
//! 3. **Sequency reorder** — coefficients sorted by total degree `i+j+k`
//!    so low-frequency (large) coefficients come first.
//! 4. **Negabinary** — signed to unsigned, magnitude-ordered bit planes.
//! 5. **Embedded coding** — planes emitted MSB-first; within a plane, bits
//!    of already-significant coefficients are sent verbatim and the rest
//!    run-length coded with unary group tests, stopping when the bit
//!    budget (`maxbits`) or the precision floor (`maxprec`) is reached.
//!
//! The header spends 1 bit on an all-zero flag plus 8 bits of biased
//! exponent; both count against the budget, exactly as in cuZFP.

use crate::lift;
use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::Result;
use std::sync::OnceLock;

/// Bit planes in an `i32` coefficient.
pub const INTPREC: u32 = 32;
/// Header bits: all-zero flag + biased exponent.
pub const HEADER_BITS: u32 = 9;

/// Values per block for dimensionality `d`.
#[inline]
pub fn block_cells(d: u8) -> usize {
    4usize.pow(d as u32)
}

/// Sequency permutation: `perm[d][rank] = block-local index`.
fn perm(d: u8) -> &'static [u16] {
    static P1: OnceLock<Vec<u16>> = OnceLock::new();
    static P2: OnceLock<Vec<u16>> = OnceLock::new();
    static P3: OnceLock<Vec<u16>> = OnceLock::new();
    let build = |d: u8| -> Vec<u16> {
        let n = block_cells(d);
        let mut idx: Vec<u16> = (0..n as u16).collect();
        let degree = |i: u16| -> (u16, u16) {
            let i = i as usize;
            let (x, y, z) = (i % 4, (i / 4) % 4, i / 16);
            ((x + y + z) as u16, i as u16)
        };
        idx.sort_by_key(|&i| degree(i));
        idx
    };
    match d {
        1 => P1.get_or_init(|| build(1)),
        2 => P2.get_or_init(|| build(2)),
        _ => P3.get_or_init(|| build(3)),
    }
}

/// Exponent `e` with `|x| < 2^e` (frexp-style); `i32::MIN` for zero input.
#[inline]
fn exponent(x: f32) -> i32 {
    if x == 0.0 {
        i32::MIN
    } else {
        // frexp: x = m * 2^e with 0.5 <= |m| < 1. Computed in f64 so the
        // power-of-two guards never overflow for extreme f32 inputs.
        let a = x.abs() as f64;
        let e = (a.log2().floor() as i32) + 1;
        if a >= f64_pow2(e) {
            e + 1
        } else if a < f64_pow2(e - 1) {
            e - 1
        } else {
            e
        }
    }
}

/// `2^e` in f64 (exact for |e| < 1023; the codec clamps far inside that).
fn f64_pow2(e: i32) -> f64 {
    f64::powi(2.0, e)
}

/// Number of bit planes to keep so truncation error stays below `tol`.
///
/// Truncating negabinary planes below `kmin` perturbs a coefficient by at
/// most `2^(kmin+1)` integer units; the inverse transform amplifies by at
/// most `2^d`, and an integer unit is worth `2^(emax-30)`. Solving
/// `2^(kmin+1+d+emax-30) <= tol` for `kmin` gives the plane cut-off.
fn maxprec_from_emax(emax: i32, tol: f64, d: u8) -> u32 {
    if tol <= 0.0 || tol.is_nan() || tol.is_infinite() {
        return INTPREC;
    }
    let kmin = (tol.log2().floor() as i32) - emax + 30 - (d as i32 + 1);
    let kmin = kmin.clamp(0, INTPREC as i32);
    (INTPREC as i32 - kmin) as u32
}

/// Encoder-side precision for fixed-accuracy mode, from the block max.
pub fn maxprec_for_tolerance(vmax: f32, tol: f64, d: u8) -> u32 {
    if vmax == 0.0 {
        return INTPREC; // all-zero block: precision is irrelevant
    }
    let emax = exponent(vmax).clamp(-127, 128);
    maxprec_from_emax(emax, tol, d)
}

/// Decoder-side precision for fixed-accuracy mode: peeks the block header
/// (`skip` bits into `bytes`) to recover `emax` without consuming the
/// caller's reader.
pub fn peek_maxprec_for_accuracy(bytes: &[u8], skip: u32, tol: f64, d: u8) -> Result<u32> {
    let mut r = BitReader::new(bytes);
    r.read_bits(skip)?;
    if !r.read_bit()? {
        return Ok(INTPREC); // zero block
    }
    let emax = r.read_bits(8)? as i32 - 127;
    Ok(maxprec_from_emax(emax, tol, d))
}

/// Encodes one block of `4^d` f32 values into `w` under a bit budget.
///
/// Returns the number of bits written (always exactly `maxbits` when
/// `pad_to_maxbits` is set, as fixed-rate mode requires).
pub fn encode_block(
    values: &[f32],
    d: u8,
    maxbits: u32,
    maxprec: u32,
    pad_to_maxbits: bool,
    w: &mut BitWriter,
) -> u32 {
    let n = block_cells(d);
    debug_assert_eq!(values.len(), n);
    debug_assert!(maxbits >= HEADER_BITS);
    let start = w.bit_len();

    // Largest finite magnitude; non-finite inputs are clamped to the f32
    // max so the cast stays defined (ZFP has the same caveat).
    let mut vmax = 0.0f32;
    for &v in values {
        let a = if v.is_finite() { v.abs() } else { f32::MAX };
        vmax = vmax.max(a);
    }
    if vmax == 0.0 {
        w.write_bit(false); // all-zero block
        let mut used = 1;
        if pad_to_maxbits {
            while used < maxbits {
                let chunk = (maxbits - used).min(64);
                w.write_bits(0, chunk);
                used += chunk;
            }
        }
        return (w.bit_len() - start) as u32;
    }
    // emax in [-127, 128] stored with bias 127 -> [0, 255] in 8 bits.
    let emax = exponent(vmax).clamp(-127, 128);
    w.write_bit(true);
    w.write_bits((emax + 127) as u64, 8);

    // Fixed-point cast with |q| < 2^30, in f64 so the scale never
    // overflows even for denormal-dominated blocks.
    let scale = f64_pow2(30 - emax);
    let mut q = [0i32; 64];
    for (qi, &v) in q[..n].iter_mut().zip(values) {
        let x = if v.is_finite() { v } else { v.signum() * f32::MAX };
        *qi = (x as f64 * scale).clamp(-(1i64 << 30) as f64 + 1.0, (1i64 << 30) as f64 - 1.0)
            as i32;
    }
    lift::fwd_xform(&mut q[..n], d);

    // Reorder + negabinary.
    let p = perm(d);
    let mut u = [0u32; 64];
    for i in 0..n {
        u[i] = lift::int2uint(q[p[i] as usize]);
    }

    // Embedded coding.
    let mut bits = maxbits - HEADER_BITS;
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut sig = 0usize; // number of coefficients known significant
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        // Gather plane k into an n-bit word.
        let mut x = 0u64;
        for (i, &ui) in u[..n].iter().enumerate() {
            x |= (((ui >> k) & 1) as u64) << i;
        }
        // Verbatim bits for known-significant coefficients.
        let m = (sig as u32).min(bits);
        bits -= m;
        w.write_bits(x, m);
        x = if m >= 64 { 0 } else { x >> m };
        // Unary group tests for the rest.
        while sig < n && bits > 0 {
            bits -= 1;
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break;
            }
            while sig < n - 1 && bits > 0 {
                bits -= 1;
                let b = x & 1 != 0;
                w.write_bit(b);
                if b {
                    break;
                }
                x >>= 1;
                sig += 1;
            }
            x >>= 1;
            sig += 1;
        }
    }
    let mut used = (w.bit_len() - start) as u32;
    if pad_to_maxbits {
        while used < maxbits {
            let chunk = (maxbits - used).min(64);
            w.write_bits(0, chunk);
            used += chunk;
        }
    }
    used
}

/// Decodes one block; the mirror of [`encode_block`].
///
/// Consumes exactly `maxbits` bits when `consume_maxbits` is set (fixed
/// rate); otherwise consumes only what the encoder emitted for this block.
pub fn decode_block(
    r: &mut BitReader<'_>,
    d: u8,
    maxbits: u32,
    maxprec: u32,
    consume_maxbits: bool,
    out: &mut [f32],
) -> Result<u32> {
    let n = block_cells(d);
    debug_assert_eq!(out.len(), n);
    let mut used = 1u32;
    if !r.read_bit()? {
        out.fill(0.0);
        if consume_maxbits {
            let mut left = maxbits - used;
            while left > 0 {
                let chunk = left.min(64);
                r.read_bits(chunk)?;
                left -= chunk;
            }
            used = maxbits;
        }
        return Ok(used);
    }
    let emax = r.read_bits(8)? as i32 - 127;
    used += 8;

    let mut u = [0u32; 64];
    let mut bits = maxbits - HEADER_BITS;
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut sig = 0usize;
    let mut k = INTPREC;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = (sig as u32).min(bits);
        bits -= m;
        let mut x = r.read_bits(m)?;
        used += m;
        let mut pos = sig; // next untested coefficient
        while pos < n && bits > 0 {
            bits -= 1;
            used += 1;
            if !r.read_bit()? {
                break;
            }
            while pos < n - 1 && bits > 0 {
                bits -= 1;
                used += 1;
                if r.read_bit()? {
                    break;
                }
                pos += 1;
            }
            x |= 1u64 << pos;
            pos += 1;
        }
        sig = sig.max(pos);
        // Deposit the plane.
        let mut i = 0;
        let mut xx = x;
        while xx != 0 {
            u[i] |= ((xx & 1) as u32) << k;
            xx >>= 1;
            i += 1;
        }
    }

    // Undo negabinary + reorder + transform + cast.
    let p = perm(d);
    let mut q = [0i32; 64];
    for i in 0..n {
        q[p[i] as usize] = lift::uint2int(u[i]);
    }
    lift::inv_xform(&mut q[..n], d);
    let scale = f64_pow2(emax - 30);
    for (o, &qi) in out.iter_mut().zip(&q[..n]) {
        *o = (qi as f64 * scale) as f32;
    }

    if consume_maxbits {
        let mut left = maxbits - used;
        while left > 0 {
            let chunk = left.min(64);
            r.read_bits(chunk)?;
            left -= chunk;
        }
        used = maxbits;
    }
    Ok(used)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f32], d: u8, maxbits: u32) -> Vec<f32> {
        let mut w = BitWriter::new();
        let used = encode_block(values, d, maxbits, INTPREC, true, &mut w);
        assert_eq!(used, maxbits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0f32; values.len()];
        let consumed = decode_block(&mut r, d, maxbits, INTPREC, true, &mut out).unwrap();
        assert_eq!(consumed, maxbits);
        out
    }

    #[test]
    fn perm_is_a_permutation_sorted_by_degree() {
        for d in 1..=3u8 {
            let p = perm(d);
            let n = block_cells(d);
            assert_eq!(p.len(), n);
            let mut seen = vec![false; n];
            let mut last_deg = 0;
            for &i in p {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
                let i = i as usize;
                let deg = i % 4 + (i / 4) % 4 + i / 16;
                assert!(deg >= last_deg, "degree must be non-decreasing");
                last_deg = deg;
            }
        }
    }

    #[test]
    fn exponent_brackets_magnitude() {
        for &x in &[1.0f32, 0.5, 2.0, 3.7, 1e-20, 1e20, 0.99999, 1.00001] {
            let e = exponent(x);
            assert!((x.abs() as f64) < f64_pow2(e), "x={x} e={e}");
            assert!((x.abs() as f64) >= f64_pow2(e - 1), "x={x} e={e}");
        }
        assert_eq!(exponent(0.0), i32::MIN);
    }

    #[test]
    fn zero_block_roundtrips() {
        let v = vec![0.0f32; 64];
        let out = roundtrip(&v, 3, 64);
        assert_eq!(out, v);
    }

    #[test]
    fn generous_budget_is_near_lossless() {
        let v: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 100.0).collect();
        // 32 planes * 64 values + header is a loose upper bound.
        let out = roundtrip(&v, 3, 9 + 64 * 33 + 64);
        for (a, b) in v.iter().zip(&out) {
            let tol = a.abs().max(1.0) * 1e-6;
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn error_decreases_with_rate() {
        let v: Vec<f32> = (0..64)
            .map(|i| {
                let (x, y, z) = ((i % 4) as f32, ((i / 4) % 4) as f32, (i / 16) as f32);
                (x * 0.5 + y * 0.3 + z * 0.2).sin() * 1000.0
            })
            .collect();
        let mut prev_err = f64::INFINITY;
        for rate in [2u32, 4, 8, 16] {
            let out = roundtrip(&v, 3, rate * 64);
            let err: f64 =
                v.iter().zip(&out).map(|(a, b)| ((a - b) as f64).powi(2)).sum::<f64>();
            assert!(err <= prev_err * 1.5, "rate {rate}: err {err} vs prev {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1.0, "high rate should be accurate, got {prev_err}");
    }

    #[test]
    fn d1_and_d2_blocks() {
        let v4: Vec<f32> = vec![1.0, -2.0, 3.5, 10.0];
        let out = roundtrip(&v4, 1, 9 + 4 * 33 + 16);
        for (a, b) in v4.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        let v16: Vec<f32> = (0..16).map(|i| i as f32 * 2.0 - 16.0).collect();
        let out = roundtrip(&v16, 2, 9 + 16 * 33 + 32);
        for (a, b) in v16.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn tiny_budget_still_produces_plausible_block() {
        // 16 bits for 64 values: only the DC scale survives, but decode
        // must not error and magnitudes must stay in the data's ballpark.
        let v = vec![100.0f32; 64];
        let out = roundtrip(&v, 3, 16);
        for &b in &out {
            assert!(b.abs() <= 256.0, "decoded {b} from constant-100 block");
        }
    }

    #[test]
    fn maxprec_truncates_planes() {
        let v: Vec<f32> = (0..64).map(|i| (i as f32).sqrt() * 10.0).collect();
        let mut w = BitWriter::new();
        let used_full = encode_block(&v, 3, 1 << 16, INTPREC, false, &mut w);
        let mut w2 = BitWriter::new();
        let used_low = encode_block(&v, 3, 1 << 16, 8, false, &mut w2);
        assert!(used_low < used_full);
        let bytes = w2.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0.0f32; 64];
        decode_block(&mut r, 3, 1 << 16, 8, false, &mut out).unwrap();
        // 8 planes on |v| < 2^7: quantization steps of 2^(7-8+1) = 1,
        // amplified by up to ~2^3 through the 3-D inverse transform.
        for (a, b) in v.iter().zip(&out) {
            assert!((a - b).abs() < 32.0, "{a} vs {b}");
        }
    }

    #[test]
    fn variable_length_blocks_chain() {
        // Without padding, consecutive blocks must decode back-to-back.
        let blocks: Vec<Vec<f32>> = (0..5)
            .map(|b| (0..64).map(|i| ((b * 64 + i) as f32 * 0.11).cos() * 50.0).collect())
            .collect();
        let mut w = BitWriter::new();
        let mut lens = Vec::new();
        for b in &blocks {
            lens.push(encode_block(b, 3, 1 << 16, 16, false, &mut w));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (b, &len) in blocks.iter().zip(&lens) {
            let mut out = vec![0.0f32; 64];
            let used = decode_block(&mut r, 3, 1 << 16, 16, false, &mut out).unwrap();
            assert_eq!(used, len);
            // 16 planes on |v| <= 64 leaves quantization steps of a few
            // times 2^(emax-16) ~ 0.004, amplified by the 3-D transform.
            for (a, o) in b.iter().zip(&out) {
                assert!((a - o).abs() < 0.1, "{a} vs {o}");
            }
        }
    }

    #[test]
    fn non_finite_inputs_do_not_panic() {
        let mut v = vec![1.0f32; 64];
        v[0] = f32::NAN;
        v[1] = f32::INFINITY;
        let out = roundtrip(&v, 3, 64 * 8);
        assert!(out.iter().all(|x| x.is_finite()));
    }
}
