//! Traced device execution of the ZFP pipeline.
//!
//! Runs the same `4^d` block kernels as [`crate::stream`] through the
//! gpu-sim block executor, declaring every tracked-buffer range each block
//! touches so the sanitizer can bounds-check them (memcheck) and intersect
//! them across blocks (racecheck). Stream bytes come from the shared
//! [`crate::stream`] encode/assemble/decode-plan code, so traced output is
//! byte-identical to the plain CPU path.
//!
//! ZFP is the motivating case for the sanitizer's *bit*-granular access
//! records: at rate 4, block `i` occupies payload bits `[4·16·i,
//! 4·16·(i+1))`, so adjacent blocks legitimately share boundary *bytes* —
//! byte-level tracking would flag every fractional-rate stream as one long
//! write-write race. Gather reads clamp at the array edge exactly like
//! [`crate::stream::compress`] does, so partial edge blocks re-read border
//! samples (a benign read-read overlap the racecheck must not flag).

use crate::config::{Dims3, ZfpConfig, ZfpMode};
use crate::stream::{self, BlockPos};
use foresight_util::{Error, Result};
use gpu_sim::{
    launch_grid_traced, BlockAccess, BlockGrid, BufferId, Device, GpuRunReport, KernelKind,
};

/// Extent of a block per axis for dimensionality `d`.
fn block_extent(d: u8) -> (usize, usize, usize) {
    match d {
        1 => (4, 1, 1),
        2 => (4, 4, 1),
        _ => (4, 4, 4),
    }
}

/// Records the clamped row reads of one gathered block (mirrors
/// `stream::gather`: edge blocks re-read the nearest interior sample).
fn record_gather(acc: &mut BlockAccess, buf: BufferId, pos: &BlockPos, dims: Dims3, d: u8) {
    let [nx, ny, nz] = dims.extents();
    let (ex, ey, ez) = block_extent(d);
    for dz in 0..ez {
        let z = (pos.origin[2] + dz).min(nz - 1);
        for dy in 0..ey {
            let y = (pos.origin[1] + dy).min(ny - 1);
            let row = nx * (y + ny * z);
            let x0 = pos.origin[0].min(nx - 1);
            let x1 = (pos.origin[0] + ex - 1).min(nx - 1);
            acc.read(buf, (row + x0) as u64 * 4, (row + x1 + 1) as u64 * 4);
        }
    }
}

/// Records the in-range row writes of one scattered block (mirrors
/// `stream::scatter`: replicated padding is skipped, so blocks write
/// disjoint cells).
fn record_scatter(acc: &mut BlockAccess, buf: BufferId, pos: &BlockPos, dims: Dims3, d: u8) {
    let [nx, ny, nz] = dims.extents();
    let (ex, ey, ez) = block_extent(d);
    for dz in 0..ez {
        let z = pos.origin[2] + dz;
        for dy in 0..ey {
            let y = pos.origin[1] + dy;
            if y >= ny || z >= nz || pos.origin[0] >= nx {
                continue;
            }
            let row = nx * (y + ny * z);
            let x0 = pos.origin[0];
            let x1 = (x0 + ex).min(nx);
            acc.write(buf, (row + x0) as u64 * 4, (row + x1) as u64 * 4);
        }
    }
}

/// Compresses `data` on the simulated device with sanitizer tracing.
///
/// Produces exactly the bytes of [`crate::compress`]; the report mirrors
/// [`gpu_sim::run_compression`] (only the compressed stream crosses PCIe).
pub fn compress_on(
    device: &mut Device,
    data: &[f32],
    dims: Dims3,
    cfg: &ZfpConfig,
) -> Result<(Vec<u8>, GpuRunReport)> {
    cfg.validate()?;
    if data.len() != dims.len() {
        return Err(Error::invalid(format!(
            "data length {} does not match dims {:?}",
            data.len(),
            dims
        )));
    }
    device.reset_clock();
    let mut held = Vec::new();
    let run = encode_launch(device, data, dims, cfg, &mut held);
    let out = match run {
        Ok(encoded) => {
            let out = stream::assemble(dims, cfg, &encoded);
            match device.d2h(out.len() as u64) {
                Ok(()) => Ok(out),
                Err(e) => Err(e),
            }
        }
        Err(e) => Err(e),
    };
    let out = match out {
        Ok(out) => out,
        Err(e) => {
            for id in held {
                device.release(id);
            }
            return Err(e);
        }
    };
    for id in held.into_iter().rev() {
        device.free(id)?;
    }
    let rep = GpuRunReport::from_breakdown(
        device.breakdown(),
        (data.len() * 4) as u64,
        out.len() as u64,
    );
    Ok((out, rep))
}

fn encode_launch(
    device: &mut Device,
    data: &[f32],
    dims: Dims3,
    cfg: &ZfpConfig,
    held: &mut Vec<BufferId>,
) -> Result<Vec<(Vec<u8>, u32)>> {
    let (blocks, d) = stream::block_grid(dims);
    // lint: allow(alloc-arith) — sized from an in-memory slice, not header data
    let in_buf = device.malloc((data.len() * 4) as u64, "zfp.in")?;
    held.push(in_buf);
    device.mark_resident(in_buf)?;

    // Fixed-size staging slot per block — exact in fixed-rate mode, the
    // encoder's hard budget otherwise — matching cuZFP's pre-compaction
    // layout where block `i` starts at bit `i * maxbits`.
    let cap_bits = stream::block_bit_cap(&cfg.mode, d) as u64;
    let stage_bytes = cap_bits
        .checked_mul(blocks.len() as u64)
        .map(|b| b.div_ceil(8))
        .ok_or_else(|| Error::invalid("encode staging size overflows"))?;
    let stage = device.malloc(stage_bytes, "zfp.stage")?;
    held.push(stage);

    let vpb = (data.len() as u64).div_ceil(blocks.len().max(1) as u64);
    let bits = match cfg.mode {
        ZfpMode::FixedRate(rate) => rate,
        _ => 32.0,
    };
    let grid = BlockGrid { blocks: blocks.len(), values_per_block: vpb, bits_per_value: bits };
    let (encoded, _) =
        launch_grid_traced(device, KernelKind::ZfpCompress, grid, "zfp.encode", |bi, acc| {
            let pos = &blocks[bi];
            record_gather(acc, in_buf, pos, dims, d);
            let (bytes, used) = stream::encode_one(data, dims, pos, d, cfg);
            let start = bi as u64 * cap_bits;
            acc.write_bits(stage, start, start + used as u64);
            (bytes, used)
        })?;
    Ok(encoded)
}

/// Decompresses a stream on the simulated device with sanitizer tracing.
///
/// Produces exactly the result of [`crate::decompress`].
pub fn decompress_on(
    device: &mut Device,
    stream_bytes: &[u8],
) -> Result<(Vec<f32>, Dims3, GpuRunReport)> {
    let inf = stream::info(stream_bytes)?;
    device.reset_clock();
    let plan = stream::prepare_decode(&inf, stream_bytes)?;
    let payload = stream_bytes
        .get(plan.payload_start..)
        .ok_or_else(|| Error::corrupt("truncated payload"))?;

    let mut held = Vec::new();
    let run = decode_launch(device, &inf, &plan, payload, &mut held);
    let out = match run {
        Ok(out) => out,
        Err(e) => {
            for id in held {
                device.release(id);
            }
            return Err(e);
        }
    };
    for id in held.into_iter().rev() {
        device.free(id)?;
    }
    let unc = (plan.n_values * 4) as u64;
    let rep =
        GpuRunReport::from_breakdown(device.breakdown(), unc, stream_bytes.len() as u64);
    Ok((out, inf.dims, rep))
}

fn decode_launch(
    device: &mut Device,
    inf: &stream::StreamInfo,
    plan: &stream::DecodePlan,
    payload: &[u8],
    held: &mut Vec<BufferId>,
) -> Result<Vec<f32>> {
    let payload_buf = device.malloc(payload.len() as u64, "zfp.payload")?;
    held.push(payload_buf);
    device.h2d_buf(payload_buf)?;
    let out_bytes = (plan.n_values as u64)
        .checked_mul(4)
        .ok_or_else(|| Error::corrupt("zfp output byte size overflows"))?;
    let out_buf = device.malloc(out_bytes, "zfp.out")?;
    held.push(out_buf);

    let dims = inf.dims;
    let nblocks = plan.blocks.len();
    let vpb = (plan.n_values as u64).div_ceil(nblocks.max(1) as u64);
    let bits = if plan.n_values == 0 {
        0.0
    } else {
        payload.len() as f64 * 8.0 / plan.n_values as f64
    };
    let grid = BlockGrid { blocks: nblocks, values_per_block: vpb, bits_per_value: bits };
    let (decoded, _) =
        launch_grid_traced(device, KernelKind::ZfpDecompress, grid, "zfp.decode", |bi, acc| {
            // Bit-exact payload span of this block; fractional rates make
            // neighbors share boundary bytes, which bit records keep apart.
            let start = plan.bit_offsets[bi];
            acc.read_bits(payload_buf, start, start + plan.bit_lens[bi] as u64);
            record_scatter(acc, out_buf, &plan.blocks[bi], dims, plan.d);
            stream::decode_one(inf, plan, payload, bi)
        })?;

    let mut out = vec![0.0f32; plan.n_values];
    for (bi, dec) in decoded.into_iter().enumerate() {
        stream::scatter(&dec?, dims, &plan.blocks[bi], plan.d, &mut out);
    }
    device.d2h_buf(out_buf, "zfp.out")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_grid, GpuSpec, SanitizerConfig};

    fn smooth_3d(n: usize) -> Vec<f32> {
        (0..n * n * n)
            .map(|i| {
                let x = (i % n) as f32 / n as f32;
                let y = ((i / n) % n) as f32 / n as f32;
                let z = (i / (n * n)) as f32 / n as f32;
                ((x * 6.3).sin() + (y * 4.1).cos() + z * 2.0) * 100.0
            })
            .collect()
    }

    fn traced_device() -> Device {
        Device::new(GpuSpec::tesla_v100()).with_sanitizer(SanitizerConfig::full())
    }

    #[test]
    fn traced_stream_is_byte_identical_for_every_mode() {
        let data = smooth_3d(16);
        let dims = Dims3::D3(16, 16, 16);
        for cfg in
            [ZfpConfig::rate(4.0), ZfpConfig::precision(20), ZfpConfig::accuracy(0.01)]
        {
            let plain = crate::compress(&data, dims, &cfg).unwrap();
            let mut dev = traced_device();
            let (traced, rep) = compress_on(&mut dev, &data, dims, &cfg).unwrap();
            assert_eq!(plain, traced, "{:?}", cfg.mode);
            assert_eq!(rep.compressed_bytes as usize, traced.len());

            let (plain_rec, plain_dims) = crate::decompress(&plain).unwrap();
            let (rec, rdims, _) = decompress_on(&mut dev, &traced).unwrap();
            assert_eq!(plain_dims, rdims);
            assert_eq!(plain_rec, rec, "{:?}", cfg.mode);

            let report = dev.sanitizer_report().unwrap();
            assert!(report.is_clean(), "{:?}: {:?}", cfg.mode, report.diagnostics);
            assert_eq!(dev.allocated_bytes(), 0);
        }
    }

    #[test]
    fn fractional_rate_edge_blocks_stay_clean() {
        // Rate 3.5 puts consecutive blocks at non-byte-aligned payload
        // offsets, and 13x7x5 leaves partial blocks on every axis whose
        // clamped gathers re-read border samples: both must be race-free.
        for dims in [Dims3::D3(13, 7, 5), Dims3::D2(17, 9), Dims3::D1(101)] {
            let data: Vec<f32> =
                (0..dims.len()).map(|i| (i as f32 * 0.31).sin() * 42.0).collect();
            let cfg = ZfpConfig::rate(3.5);
            let mut dev = traced_device();
            let (stream, _) = compress_on(&mut dev, &data, dims, &cfg).unwrap();
            let (rec, rdims, _) = decompress_on(&mut dev, &stream).unwrap();
            assert_eq!(rdims, dims);
            assert_eq!(rec, crate::decompress(&stream).unwrap().0);
            let report = dev.sanitizer_report().unwrap();
            assert!(report.is_clean(), "{dims:?}: {:?}", report.diagnostics);
        }
    }

    #[test]
    fn executor_runs_a_real_zfp_block_kernel() {
        // The block executor must produce exactly the per-block encodings
        // of the serial path (relocated from the gpu-sim crate, which can
        // no longer dev-depend on this one).
        let data = smooth_3d(8);
        let dims = Dims3::D3(8, 8, 8);
        let cfg = ZfpConfig::rate(8.0);
        let (blocks, d) = stream::block_grid(dims);
        let serial: Vec<(Vec<u8>, u32)> =
            blocks.iter().map(|p| stream::encode_one(&data, dims, p, d, &cfg)).collect();
        let mut dev = Device::new(GpuSpec::tesla_v100());
        let grid = BlockGrid {
            blocks: blocks.len(),
            values_per_block: 64,
            bits_per_value: 8.0,
        };
        let (parallel, report) =
            launch_grid(&mut dev, KernelKind::ZfpCompress, grid, "zfp.encode", |bi| {
                stream::encode_one(&data, dims, &blocks[bi], d, &cfg)
            })
            .unwrap();
        assert_eq!(serial, parallel);
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn error_paths_release_all_device_buffers() {
        use gpu_sim::{FaultPlan, FaultRates};
        let data = smooth_3d(8);
        let dims = Dims3::D3(8, 8, 8);
        let cfg = ZfpConfig::rate(8.0);
        let mut ok_dev = traced_device();
        let (stream, _) = compress_on(&mut ok_dev, &data, dims, &cfg).unwrap();

        let rates = FaultRates { kernel: 1.0, ..Default::default() };
        let mut dev = Device::new(GpuSpec::tesla_v100())
            .with_sanitizer(SanitizerConfig::full())
            .with_fault_plan(FaultPlan::new(11, rates).with_max_retries(1));
        assert!(compress_on(&mut dev, &data, dims, &cfg).is_err());
        assert_eq!(dev.allocated_bytes(), 0, "leak: {:?}", dev.leak_report());
        assert!(decompress_on(&mut dev, &stream).is_err());
        assert_eq!(dev.allocated_bytes(), 0, "leak: {:?}", dev.leak_report());
    }
}
