//! ZFP's reversible integer decorrelating transform and negabinary mapping.
//!
//! The forward lift is a sequence of integer average/difference steps on
//! groups of 4 values (one group per block line along each axis). It is an
//! integer approximation of an orthogonal basis change. Like the reference
//! ZFP (before its "reversible mode"), the `>>1` floors make the roundtrip
//! *nearly* exact: a few integer units of error out of the `2^30`
//! fixed-point scale, i.e. ~1e-8 relative — far below any lossy budget.
//!
//! Negabinary maps signed coefficients to unsigned so that magnitude-order
//! bit planes can be emitted MSB-first without a separate sign pass.

/// Forward lift on one 4-vector (stride-gathered by the caller).
#[inline]
pub fn fwd_lift(p: &mut [i32; 4]) {
    let [mut x, mut y, mut z, mut w] = *p;
    // Non-overflowing for |v| < 2^30 as guaranteed by the cast stage;
    // wrapping ops keep debug builds panic-free on adversarial inputs.
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    *p = [x, y, z, w];
}

/// Inverse lift; exactly undoes [`fwd_lift`] on in-range inputs.
#[inline]
pub fn inv_lift(p: &mut [i32; 4]) {
    let [mut x, mut y, mut z, mut w] = *p;
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = w.wrapping_shl(1);
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z = z.wrapping_shl(1);
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(w);
    *p = [x, y, z, w];
}

const NBMASK: u32 = 0xAAAA_AAAA;

/// Signed -> negabinary.
#[inline]
pub fn int2uint(x: i32) -> u32 {
    (x as u32).wrapping_add(NBMASK) ^ NBMASK
}

/// Negabinary -> signed.
#[inline]
pub fn uint2int(x: u32) -> i32 {
    (x ^ NBMASK).wrapping_sub(NBMASK) as i32
}

/// Applies the lift along one axis of a `4^d` block stored x-fastest.
///
/// `n` is the total number of values (4, 16, or 64); `stride` selects the
/// axis (1 = x, 4 = y, 16 = z).
pub fn lift_axis(data: &mut [i32], stride: usize, forward: bool) {
    let n = data.len();
    debug_assert!(matches!(n, 4 | 16 | 64));
    let lines = n / 4;
    for line in 0..lines {
        // Map line id to the base offset for this stride.
        let base = match stride {
            1 => line * 4,
            4 => (line / 4) * 16 + (line % 4),
            16 => line,
            // lint: allow(decode-panic) — internal invariant: callers pass only 1/4/16
            _ => unreachable!("stride must be 1, 4, or 16"),
        };
        let mut g = [
            data[base],
            data[base + stride],
            data[base + 2 * stride],
            data[base + 3 * stride],
        ];
        if forward {
            fwd_lift(&mut g);
        } else {
            inv_lift(&mut g);
        }
        data[base] = g[0];
        data[base + stride] = g[1];
        data[base + 2 * stride] = g[2];
        data[base + 3 * stride] = g[3];
    }
}

/// Full forward transform of a block of dimensionality `d` (1, 2, or 3).
pub fn fwd_xform(data: &mut [i32], d: u8) {
    lift_axis(data, 1, true);
    if d >= 2 {
        lift_axis(data, 4, true);
    }
    if d >= 3 {
        lift_axis(data, 16, true);
    }
}

/// Full inverse transform (axes in reverse order).
pub fn inv_xform(data: &mut [i32], d: u8) {
    if d >= 3 {
        lift_axis(data, 16, false);
    }
    if d >= 2 {
        lift_axis(data, 4, false);
    }
    lift_axis(data, 1, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    // ZFP's lift is *nearly* invertible: each `>>1` floors away a half
    // unit, so a roundtrip may perturb values by a few integer units (out
    // of the 2^30 fixed-point scale). The reference library behaves the
    // same way, which is why upstream later added a separate "reversible
    // mode". These tests pin the bound.
    const LIFT_TOL: i32 = 4;

    fn assert_near(a: [i32; 4], b: [i32; 4]) {
        for i in 0..4 {
            assert!((a[i] - b[i]).abs() <= LIFT_TOL, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lift_roundtrip_error_is_bounded() {
        let cases: Vec<[i32; 4]> = vec![
            [0, 0, 0, 0],
            [1, 2, 3, 4],
            [-5, 100, -1000, 7],
            [1 << 29, -(1 << 29), (1 << 29) - 1, -(1 << 29) + 1],
            [123456789, -987654321 / 2, 0, -1],
        ];
        for c in cases {
            let mut v = c;
            fwd_lift(&mut v);
            inv_lift(&mut v);
            assert_near(v, c);
        }
    }

    #[test]
    fn lift_roundtrip_exhaustive_small() {
        // Exhaustive over a small value range.
        for a in -8i32..8 {
            for b in -8i32..8 {
                for c in -8i32..8 {
                    for d in -8i32..8 {
                        let orig = [a * 3, b * 5, c * 7, d * 11];
                        let mut v = orig;
                        fwd_lift(&mut v);
                        inv_lift(&mut v);
                        assert_near(v, orig);
                    }
                }
            }
        }
    }

    #[test]
    fn constant_input_concentrates_energy() {
        let mut v = [100, 100, 100, 100];
        fwd_lift(&mut v);
        assert_eq!(v[0], 100);
        assert_eq!(&v[1..], &[0, 0, 0]);
    }

    #[test]
    fn linear_ramp_has_sparse_coefficients() {
        let mut v = [0, 10, 20, 30];
        fwd_lift(&mut v);
        // A linear ramp needs only the average and first-order coefficient.
        assert_eq!(v[2], 0, "second-order coefficient should vanish: {v:?}");
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [-1000000i32, -1, 0, 1, 42, i32::MAX, i32::MIN, 1 << 30] {
            assert_eq!(uint2int(int2uint(x)), x);
        }
        for x in -2000i32..2000 {
            assert_eq!(uint2int(int2uint(x)), x);
        }
    }

    #[test]
    fn negabinary_magnitude_ordering() {
        // Small magnitudes must map to values with only low bits set, so
        // MSB-first plane truncation drops small coefficients last.
        assert_eq!(int2uint(0), 0);
        assert!(int2uint(1).leading_zeros() >= 30);
        assert!(int2uint(-1).leading_zeros() >= 30);
        assert!(int2uint(3).leading_zeros() > int2uint(1000).leading_zeros());
    }

    #[test]
    fn xform_roundtrip_3d() {
        let orig: Vec<i32> = (0..64).map(|i| ((i * 2654435761u64 as usize) as i32) >> 8).collect();
        for d in 1..=3u8 {
            let mut v: Vec<i32> = orig.clone();
            fwd_xform(&mut v, d);
            inv_xform(&mut v, d);
            // Rounding error compounds per axis but stays tiny relative to
            // the 2^30 fixed-point scale.
            let tol = LIFT_TOL * (1 << d);
            for (a, b) in v.iter().zip(&orig) {
                assert!((a - b).abs() <= tol, "dimension {d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn xform_decorrelates_smooth_block() {
        // A smooth 3-D field should concentrate magnitude in low-sequency
        // coefficients: coefficient 0 dominates.
        let mut v = [0i32; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    v[x + 4 * y + 16 * z] = 10000 + (x as i32) * 10 + (y as i32) * 7 + (z as i32) * 3;
                }
            }
        }
        fwd_xform(&mut v, 3);
        let total: i64 = v.iter().map(|&c| (c as i64).abs()).sum();
        assert!((v[0] as i64).abs() * 2 > total, "DC should dominate: {v:?}");
    }
}
