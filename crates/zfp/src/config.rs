//! Configuration types for the ZFP-style compressor.

use foresight_util::{Error, Result};

/// Logical dimensions of the input array (x fastest, as everywhere in the
/// workspace). Named `Dims3` to distinguish it from `lossy_sz::Dims` at
/// call sites that use both codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dims3 {
    /// 1-D array.
    D1(usize),
    /// 2-D array, `nx` fastest.
    D2(usize, usize),
    /// 3-D array, `index = x + nx*(y + ny*z)`.
    D3(usize, usize, usize),
}

impl Dims3 {
    /// Total number of values.
    pub fn len(&self) -> usize {
        match *self {
            Dims3::D1(n) => n,
            Dims3::D2(nx, ny) => nx * ny,
            Dims3::D3(nx, ny, nz) => nx * ny * nz,
        }
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of values, or `None` on arithmetic overflow — for
    /// dims that come from an untrusted stream header.
    pub fn checked_len(&self) -> Option<usize> {
        match *self {
            Dims3::D1(n) => Some(n),
            Dims3::D2(nx, ny) => nx.checked_mul(ny),
            Dims3::D3(nx, ny, nz) => nx.checked_mul(ny)?.checked_mul(nz),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> u8 {
        match self {
            Dims3::D1(_) => 1,
            Dims3::D2(..) => 2,
            Dims3::D3(..) => 3,
        }
    }

    /// Extents `[nx, ny, nz]` with unused axes set to 1.
    pub fn extents(&self) -> [usize; 3] {
        match *self {
            Dims3::D1(n) => [n, 1, 1],
            Dims3::D2(nx, ny) => [nx, ny, 1],
            Dims3::D3(nx, ny, nz) => [nx, ny, nz],
        }
    }
}

/// Compression mode.
///
/// cuZFP at the paper's time supported only [`ZfpMode::FixedRate`]
/// (§IV-B-1); precision and accuracy modes are implemented as the
/// CPU library's counterparts for completeness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Exactly `rate` bits per value (e.g. rate 4 on f32 is ratio 8x).
    FixedRate(f64),
    /// Keep the most significant `precision` bit planes of every block.
    FixedPrecision(u32),
    /// Keep enough planes that absolute error stays below the tolerance.
    FixedAccuracy(f64),
}

impl ZfpMode {
    /// Stream tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            ZfpMode::FixedRate(_) => 0,
            ZfpMode::FixedPrecision(_) => 1,
            ZfpMode::FixedAccuracy(_) => 2,
        }
    }

    /// Numeric parameter stored in the stream header.
    pub fn param(&self) -> f64 {
        match *self {
            ZfpMode::FixedRate(r) => r,
            ZfpMode::FixedPrecision(p) => p as f64,
            ZfpMode::FixedAccuracy(t) => t,
        }
    }

    /// Reconstructs a mode from its tag and parameter.
    pub fn from_tag(tag: u8, param: f64) -> Option<Self> {
        match tag {
            0 => Some(ZfpMode::FixedRate(param)),
            1 => Some(ZfpMode::FixedPrecision(param as u32)),
            2 => Some(ZfpMode::FixedAccuracy(param)),
            _ => None,
        }
    }
}

/// Full compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    /// Compression mode.
    pub mode: ZfpMode,
}

impl ZfpConfig {
    /// Fixed-rate mode at `rate` bits/value.
    pub fn rate(rate: f64) -> Self {
        Self { mode: ZfpMode::FixedRate(rate) }
    }

    /// Fixed-precision mode keeping `p` bit planes.
    pub fn precision(p: u32) -> Self {
        Self { mode: ZfpMode::FixedPrecision(p) }
    }

    /// Fixed-accuracy mode with absolute tolerance `tol`.
    pub fn accuracy(tol: f64) -> Self {
        Self { mode: ZfpMode::FixedAccuracy(tol) }
    }

    /// Validates mode parameters.
    pub fn validate(&self) -> Result<()> {
        match self.mode {
            ZfpMode::FixedRate(r) => {
                if !(r.is_finite() && r > 0.0 && r <= 64.0) {
                    return Err(Error::invalid(format!("rate must be in (0, 64], got {r}")));
                }
            }
            ZfpMode::FixedPrecision(p) => {
                if p == 0 || p > 64 {
                    return Err(Error::invalid(format!("precision must be in [1, 64], got {p}")));
                }
            }
            ZfpMode::FixedAccuracy(t) => {
                if !(t.is_finite() && t > 0.0) {
                    return Err(Error::invalid(format!(
                        "tolerance must be finite and positive, got {t}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_basics() {
        assert_eq!(Dims3::D3(4, 5, 6).len(), 120);
        assert_eq!(Dims3::D2(4, 5).extents(), [4, 5, 1]);
        assert_eq!(Dims3::D1(9).ndim(), 1);
    }

    #[test]
    fn mode_tag_roundtrip() {
        for m in [ZfpMode::FixedRate(3.5), ZfpMode::FixedPrecision(17), ZfpMode::FixedAccuracy(0.25)]
        {
            let back = ZfpMode::from_tag(m.tag(), m.param()).unwrap();
            assert_eq!(back, m);
        }
        assert!(ZfpMode::from_tag(9, 1.0).is_none());
    }

    #[test]
    fn validation() {
        assert!(ZfpConfig::rate(4.0).validate().is_ok());
        assert!(ZfpConfig::rate(0.0).validate().is_err());
        assert!(ZfpConfig::rate(100.0).validate().is_err());
        assert!(ZfpConfig::precision(0).validate().is_err());
        assert!(ZfpConfig::accuracy(-1.0).validate().is_err());
    }
}
