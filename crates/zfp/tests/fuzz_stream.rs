//! Mutation fuzzing of the ZFP stream decoder.
//!
//! Start from valid streams, then truncate, bit-flip, splice, and rewrite
//! windows of bytes. The decoder must never panic and must fail closed.
//! Fixed-rate streams are fully CRC-covered (header CRC + payload CRC), so
//! every mutation errors. Variable-rate streams carry an uncovered
//! per-block length table; mutations there must still decode safely — an
//! `Ok` result must at least have the right shape.

use lossy_zfp::{compress, decompress, Dims3, ZfpConfig};
use proptest::prelude::*;

fn make_stream(variant: u8, seed: u32) -> (Vec<u8>, usize) {
    let dims = match variant % 3 {
        0 => Dims3::D1(300 + (seed as usize % 64)),
        1 => Dims3::D2(13, 17),
        _ => Dims3::D3(8, 8, 8),
    };
    let data: Vec<f32> = (0..dims.len())
        .map(|i| ((i as u32).wrapping_mul(seed | 1) as f32 * 1e-7).sin() * 40.0)
        .collect();
    let cfg = match variant % 4 {
        0 => ZfpConfig::rate(6.0),
        1 => ZfpConfig::rate(14.0),
        2 => ZfpConfig::precision(20),
        _ => ZfpConfig::accuracy(1e-2),
    };
    (compress(&data, dims, &cfg).unwrap(), dims.len())
}

fn is_fixed_rate(variant: u8) -> bool {
    variant % 4 < 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a valid stream must be rejected (the header
    /// records exact table and payload lengths).
    #[test]
    fn truncation_always_errors(variant in 0u8..12, seed in any::<u32>(), cut_sel in any::<u32>()) {
        let (stream, _) = make_stream(variant, seed);
        let cut = cut_sel as usize % stream.len();
        prop_assert!(decompress(&stream[..cut]).is_err());
    }

    /// Bit flips: fixed-rate streams must always error; variable-rate
    /// streams must never panic, and an accepted decode keeps its shape.
    #[test]
    fn bit_flip_fails_closed(variant in 0u8..12, seed in any::<u32>(), flip_sel in any::<u32>()) {
        let (stream, n) = make_stream(variant, seed);
        let mut bad = stream.clone();
        let bit = flip_sel as usize % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        match decompress(&bad) {
            Err(_) => {}
            Ok((rec, _)) => {
                prop_assert!(
                    !is_fixed_rate(variant),
                    "fixed-rate flip at bit {} accepted", bit
                );
                prop_assert_eq!(rec.len(), n);
            }
        }
    }

    /// Overwriting a window with arbitrary bytes must not panic.
    #[test]
    fn window_rewrite_never_panics(
        variant in 0u8..12,
        seed in any::<u32>(),
        start_sel in any::<u32>(),
        junk in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let (stream, n) = make_stream(variant, seed);
        let mut bad = stream.clone();
        let start = start_sel as usize % bad.len();
        let end = (start + junk.len()).min(bad.len());
        bad[start..end].copy_from_slice(&junk[..end - start]);
        if let Ok((rec, _)) = decompress(&bad) {
            prop_assert_eq!(rec.len(), n);
        }
    }

    /// Cut-and-join of two valid streams must fail closed.
    #[test]
    fn splice_never_panics(
        va in 0u8..12, vb in 0u8..12,
        sa in any::<u32>(), sb in any::<u32>(),
        cut_sel in any::<u32>(),
    ) {
        let (a, na) = make_stream(va, sa);
        let (b, nb) = make_stream(vb, sb);
        let cut = cut_sel as usize % a.len();
        let mut spliced = a[..cut].to_vec();
        spliced.extend_from_slice(&b[cut.min(b.len())..]);
        if let Ok((rec, _)) = decompress(&spliced) {
            prop_assert!(rec.len() == na || rec.len() == nb);
        }
    }

    /// Raw garbage of any size must be rejected without panicking.
    #[test]
    fn garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(decompress(&junk).is_err());
    }
}
