//! Property tests for the ZFP-style codec.

use lossy_zfp::{compress, decompress, Dims3, ZfpConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-rate streams decode to the right shape and the payload size
    /// is an exact function of rate and block count.
    #[test]
    fn fixed_rate_stream_shape(
        nx in 1usize..20, ny in 1usize..20, nz in 1usize..10,
        rate_q in 1u32..=16,
        seed in any::<u32>(),
    ) {
        let rate = rate_q as f64;
        let dims = Dims3::D3(nx, ny, nz);
        let data: Vec<f32> = (0..dims.len())
            .map(|i| ((i as u32).wrapping_mul(seed | 1) as f32 * 1e-7).sin() * 1e3)
            .collect();
        let stream = compress(&data, dims, &ZfpConfig::rate(rate)).unwrap();
        let (rec, rdims) = decompress(&stream).unwrap();
        prop_assert_eq!(rdims, dims);
        prop_assert_eq!(rec.len(), data.len());
        prop_assert!(rec.iter().all(|v| v.is_finite()));
        let blocks = nx.div_ceil(4) * ny.div_ceil(4) * nz.div_ceil(4);
        let maxbits = ((rate * 64.0).round() as u64).max(10);
        let payload = (blocks as u64 * maxbits).div_ceil(8);
        // Header is 64 bytes (60 of fields plus a trailing header CRC).
        prop_assert_eq!(stream.len() as u64, 64 + payload);
    }

    /// High-rate reconstruction error is tiny relative to the data scale.
    #[test]
    fn high_rate_near_lossless(vals in prop::collection::vec(-1e6f32..1e6, 64..=64)) {
        let dims = Dims3::D3(4, 4, 4);
        let stream = compress(&vals, dims, &ZfpConfig::rate(32.0)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        let scale = vals.iter().fold(1.0f32, |m, v| m.max(v.abs())) as f64;
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!(((a - b) as f64).abs() <= scale * 1e-5, "{} vs {}", a, b);
        }
    }

    /// Fixed-accuracy mode honors its tolerance on random smooth fields.
    #[test]
    fn accuracy_mode_bounds_error(
        seed in any::<u32>(),
        tol_exp in -3i32..2,
    ) {
        let tol = 10f64.powi(tol_exp);
        let n = 8usize;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| {
                let t = (i as u32).wrapping_mul(seed | 1) as f32 * 1e-8;
                (t.sin() + (t * 3.1).cos()) * 50.0
            })
            .collect();
        let stream = compress(&data, Dims3::D3(n, n, n), &ZfpConfig::accuracy(tol)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!(((a - b) as f64).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    /// Decoding truncated or bit-flipped streams errors instead of panicking.
    #[test]
    fn corruption_never_panics(cut in 0usize..2000, flip in 0usize..2000) {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).cos()).collect();
        let stream = compress(&data, Dims3::D3(8, 8, 8), &ZfpConfig::rate(6.0)).unwrap();
        if cut < stream.len() {
            prop_assert!(decompress(&stream[..cut]).is_err());
        }
        let mut bad = stream.clone();
        let pos = flip % bad.len();
        bad[pos] ^= 0x10;
        // Either an error or a decode of plausible shape; header CRC does
        // not cover itself so some flips decode to altered-but-valid data.
        if let Ok((rec, _)) = decompress(&bad) {
            prop_assert_eq!(rec.len(), data.len());
        }
    }

    /// Rate monotonicity: more bits never hurt (PSNR within noise).
    #[test]
    fn rate_monotone(seed in any::<u32>()) {
        let n = 12usize;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| {
                let t = (i as u32).wrapping_mul(seed | 1) as f32 * 1e-8;
                t.sin() * 100.0
            })
            .collect();
        let mse = |rate: f64| -> f64 {
            let s = compress(&data, Dims3::D3(n, n, n), &ZfpConfig::rate(rate)).unwrap();
            let (rec, _) = decompress(&s).unwrap();
            data.iter().zip(&rec).map(|(a, b)| ((a - b) as f64).powi(2)).sum::<f64>()
        };
        let e4 = mse(4.0);
        let e16 = mse(16.0);
        prop_assert!(e16 <= e4 * 1.01 + 1e-12, "e4={} e16={}", e4, e16);
    }
}
