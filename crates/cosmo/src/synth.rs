//! Synthetic HACC and Nyx snapshot generation.
//!
//! Both datasets are derived from the *same* simulated universe
//! (`nbody-sim`), mirroring the paper's observation that HACC and Nyx data
//! "can be mutually verified by each other under the same simulation":
//! the particle load becomes the HACC snapshot; gridding the particles and
//! applying gas physics scalings produces the Nyx fields, with value
//! ranges matching Table II.

use crate::field::{HaccSnapshot, NyxSnapshot};
use cosmo_fft::Grid3;
use foresight_util::Result;
use nbody_sim::{cic_deposit, simulate_universe, Particles};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for snapshot synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthOptions {
    /// Particle/grid side (the load is `n_side^3` particles).
    pub n_side: usize,
    /// Box side length; Table II positions are in (0, 256).
    pub box_size: f64,
    /// RNG seed.
    pub seed: u64,
    /// PM steps to cluster the load.
    pub steps: usize,
}

impl Default for SynthOptions {
    fn default() -> Self {
        Self { n_side: 64, box_size: 256.0, seed: 0x5EED, steps: 10 }
    }
}

/// Rescales velocities into the HACC `(-1e4, 1e4)` range.
fn normalize_velocities(p: &mut Particles, target_max: f32) {
    let mut vmax = 0.0f32;
    for arr in [&p.vx, &p.vy, &p.vz] {
        for &v in arr.iter() {
            vmax = vmax.max(v.abs());
        }
    }
    if vmax > 0.0 {
        let s = target_max / vmax;
        for arr in [&mut p.vx, &mut p.vy, &mut p.vz] {
            for v in arr.iter_mut() {
                *v *= s;
            }
        }
    }
}

/// Generates a HACC-like snapshot (six 1-D arrays).
pub fn generate_hacc(opts: &SynthOptions) -> Result<HaccSnapshot> {
    let mut p = simulate_universe(opts.n_side, opts.box_size, opts.seed, opts.steps)?;
    normalize_velocities(&mut p, 9.5e3);
    Ok(HaccSnapshot {
        x: p.x,
        y: p.y,
        z: p.z,
        vx: p.vx,
        vy: p.vy,
        vz: p.vz,
        box_size: opts.box_size,
    })
}

/// Generates a Nyx-like snapshot (six 3-D grids) from the same universe.
///
/// Gas physics stand-ins, chosen to land in Table II's ranges and to have
/// the paper's key statistical property — densities/temperature with a
/// huge dynamic range but concentrated distribution, velocities noisy and
/// symmetric:
///
/// - `rho_dm = dm_scale * (1 + delta_cic)`, clipped to `(0, 1e4)`;
/// - `rho_b = b_scale * (1 + delta)^1.8 * lognormal_scatter`, `(0, 1e5)`;
/// - `T = T0 * (rho_b / b_scale)^(2/3) * scatter`, clamped to `(1e2, 1e7)`;
/// - velocities: CIC momentum / CIC mass, scaled into `(-1e8, 1e8)` cm/s.
pub fn generate_nyx(opts: &SynthOptions) -> Result<NyxSnapshot> {
    let mut p = simulate_universe(opts.n_side, opts.box_size, opts.seed, opts.steps)?;
    normalize_velocities(&mut p, 9.5e3);
    let grid = Grid3::cube(opts.n_side);
    let delta = cic_deposit(&p, grid, opts.box_size);
    let n = grid.len();
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x4E59);

    let dm_scale = 40.0f64;
    let b_scale = 35.0f64;
    let t0 = 2.0e3f64;

    let mut snap = NyxSnapshot {
        n_side: opts.n_side,
        box_size: opts.box_size,
        baryon_density: Vec::with_capacity(n),
        dark_matter_density: Vec::with_capacity(n),
        temperature: Vec::with_capacity(n),
        velocity_x: vec![0.0; n],
        velocity_y: vec![0.0; n],
        velocity_z: vec![0.0; n],
    };
    for &d in &delta {
        let one_plus = (1.0 + d).max(1e-4);
        let rho_dm = (dm_scale * one_plus).clamp(1e-3, 9.9e3);
        let scatter: f64 = 1.0 + (rng.gen::<f64>() - 0.5) * 0.2;
        let rho_b = (b_scale * one_plus.powf(1.8) * scatter).clamp(1e-3, 9.9e4);
        let t_scatter: f64 = 1.0 + (rng.gen::<f64>() - 0.5) * 0.3;
        let temp = (t0 * (rho_b / b_scale).powf(2.0 / 3.0) * t_scatter).clamp(1.1e2, 9.9e6);
        snap.dark_matter_density.push(rho_dm as f32);
        snap.baryon_density.push(rho_b as f32);
        snap.temperature.push(temp as f32);
    }

    // Mass-weighted CIC velocity grids, then convert km/s -> cm/s-ish
    // range by scaling into (-1e8, 1e8).
    let mut mass = vec![0.0f64; n];
    let mut mom = [vec![0.0f64; n], vec![0.0f64; n], vec![0.0f64; n]];
    let inv = 1.0 / opts.box_size;
    let side = opts.n_side;
    let split = |g: f64| -> (usize, f64) {
        let fl = g.floor();
        ((fl as i64).rem_euclid(side as i64) as usize, g - fl)
    };
    for i in 0..p.len() {
        let gx = (p.x[i] as f64 * inv).rem_euclid(1.0) * side as f64 - 0.5;
        let gy = (p.y[i] as f64 * inv).rem_euclid(1.0) * side as f64 - 0.5;
        let gz = (p.z[i] as f64 * inv).rem_euclid(1.0) * side as f64 - 0.5;
        let (ix, fx) = split(gx);
        let (iy, fy) = split(gy);
        let (iz, fz) = split(gz);
        for (dz, wz) in [(0usize, 1.0 - fz), (1, fz)] {
            for (dy, wy) in [(0usize, 1.0 - fy), (1, fy)] {
                for (dx, wx) in [(0usize, 1.0 - fx), (1, fx)] {
                    let c = grid.index((ix + dx) % side, (iy + dy) % side, (iz + dz) % side);
                    let w = wx * wy * wz;
                    mass[c] += w;
                    mom[0][c] += w * p.vx[i] as f64;
                    mom[1][c] += w * p.vy[i] as f64;
                    mom[2][c] += w * p.vz[i] as f64;
                }
            }
        }
    }
    let vel_scale = 1e4; // km/s-ish -> cm/s-ish magnitude
    for c in 0..n {
        let m = mass[c].max(1e-9);
        snap.velocity_x[c] = ((mom[0][c] / m) * vel_scale).clamp(-9.9e7, 9.9e7) as f32;
        snap.velocity_y[c] = ((mom[1][c] / m) * vel_scale).clamp(-9.9e7, 9.9e7) as f32;
        snap.velocity_z[c] = ((mom[2][c] / m) * vel_scale).clamp(-9.9e7, 9.9e7) as f32;
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::in_expected_range;

    fn small_opts() -> SynthOptions {
        SynthOptions { n_side: 16, box_size: 256.0, seed: 7, steps: 4 }
    }

    #[test]
    fn hacc_fields_land_in_table2_ranges() {
        let snap = generate_hacc(&small_opts()).unwrap();
        assert_eq!(snap.len(), 4096);
        for (name, data) in snap.fields() {
            assert!(in_expected_range(name, data), "{name} out of Table II range");
            assert!(data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn nyx_fields_land_in_table2_ranges() {
        let snap = generate_nyx(&small_opts()).unwrap();
        assert_eq!(snap.cells(), 4096);
        for (name, data) in snap.fields() {
            assert!(in_expected_range(name, data), "{name} out of Table II range");
            assert!(data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate_nyx(&small_opts()).unwrap();
        let b = generate_nyx(&small_opts()).unwrap();
        assert_eq!(a.baryon_density, b.baryon_density);
        let c = generate_nyx(&SynthOptions { seed: 8, ..small_opts() }).unwrap();
        assert_ne!(a.baryon_density, c.baryon_density);
    }

    #[test]
    fn density_fields_have_wide_dynamic_range_and_concentration() {
        // The Nyx-vs-HACC compression story hinges on this property:
        // density spans decades but most cells sit near the mean.
        let snap = generate_nyx(&SynthOptions { n_side: 32, ..small_opts() }).unwrap();
        let s = foresight_util::stats::summarize(&snap.baryon_density);
        assert!(s.max / s.min.max(1e-6) > 100.0, "range too narrow: {s:?}");
        let median = {
            let mut v = snap.baryon_density.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2] as f64
        };
        assert!(median < s.mean * 2.0, "distribution should be concentrated/skewed");
    }

    #[test]
    fn velocities_are_roughly_symmetric() {
        let snap = generate_nyx(&small_opts()).unwrap();
        let s = foresight_util::stats::summarize(&snap.velocity_z);
        assert!(s.min < 0.0 && s.max > 0.0);
        assert!(s.mean.abs() < 0.3 * s.max.abs().max(s.min.abs()), "mean {}", s.mean);
    }
}
