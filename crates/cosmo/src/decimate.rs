//! Decimation: the baseline data-reduction strategy the paper's
//! introduction argues against.
//!
//! "The data are usually saved using a process known as decimation ...
//! This process can lead to a loss of valuable simulation information."
//! Two flavours are provided so the comparison experiments can quantify
//! that loss at matched storage budgets:
//!
//! - **stride decimation** — keep every k-th value and reconstruct by
//!   linear interpolation (spatial subsampling);
//! - **snapshot decimation** — keep every k-th snapshot of a time series
//!   and reconstruct intermediate frames by linear interpolation in time.

use foresight_util::{Error, Result};

/// Keeps every `k`-th value of `data` (k >= 1).
pub fn stride_decimate(data: &[f32], k: usize) -> Result<Vec<f32>> {
    if k == 0 {
        return Err(Error::invalid("stride must be positive"));
    }
    Ok(data.iter().step_by(k).copied().collect())
}

/// Reconstructs a stride-decimated array to `original_len` values by
/// linear interpolation between kept samples (edge-extended at the tail).
pub fn stride_reconstruct(kept: &[f32], k: usize, original_len: usize) -> Result<Vec<f32>> {
    if k == 0 {
        return Err(Error::invalid("stride must be positive"));
    }
    if kept.len() != original_len.div_ceil(k) {
        return Err(Error::invalid(format!(
            "{} kept samples cannot reconstruct {original_len} values at stride {k}",
            kept.len()
        )));
    }
    let mut out = Vec::with_capacity(original_len);
    for i in 0..original_len {
        let j = i / k;
        let frac = (i % k) as f32 / k as f32;
        let a = kept[j];
        let b = kept.get(j + 1).copied().unwrap_or(a);
        out.push(a + (b - a) * frac);
    }
    Ok(out)
}

/// Effective compression ratio of stride decimation.
pub fn stride_ratio(k: usize, original_len: usize) -> f64 {
    if original_len == 0 {
        return 1.0;
    }
    original_len as f64 / original_len.div_ceil(k) as f64
}

/// Keeps every `k`-th snapshot of a series (always keeps the first).
pub fn snapshot_decimate<T: Clone>(snapshots: &[T], k: usize) -> Result<Vec<T>> {
    if k == 0 {
        return Err(Error::invalid("snapshot stride must be positive"));
    }
    Ok(snapshots.iter().step_by(k).cloned().collect())
}

/// Reconstructs frame `t` (0-based) of a decimated series of original
/// length `n_frames` by linear interpolation between surviving frames.
pub fn snapshot_reconstruct(
    kept: &[Vec<f32>],
    k: usize,
    n_frames: usize,
    t: usize,
) -> Result<Vec<f32>> {
    if k == 0 || kept.is_empty() {
        return Err(Error::invalid("need a positive stride and at least one kept frame"));
    }
    if t >= n_frames {
        return Err(Error::invalid(format!("frame {t} out of range {n_frames}")));
    }
    let j = t / k;
    let frac = (t % k) as f32 / k as f32;
    let a = &kept[j.min(kept.len() - 1)];
    let b = kept.get(j + 1).unwrap_or(a);
    if a.len() != b.len() {
        return Err(Error::invalid("kept frames have different sizes"));
    }
    Ok(a.iter().zip(b).map(|(&x, &y)| x + (y - x) * frac).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_roundtrip_on_linear_data_is_exact() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 2.0).collect();
        let kept = stride_decimate(&data, 4).unwrap();
        assert_eq!(kept.len(), 25);
        let rec = stride_reconstruct(&kept, 4, 100).unwrap();
        // Exact between kept samples; the tail past the last kept sample
        // is edge-extended (flat), so it is excluded.
        let covered = (kept.len() - 1) * 4;
        for i in 0..covered {
            assert!((data[i] - rec[i]).abs() < 1e-4, "{} vs {}", data[i], rec[i]);
        }
        for r in rec.iter().take(100).skip(covered) {
            assert_eq!(*r, *kept.last().unwrap(), "tail should edge-extend");
        }
    }

    #[test]
    fn stride_loses_high_frequency_content() {
        // A fast oscillation is destroyed by stride-4 decimation.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 2.0).sin()).collect();
        let kept = stride_decimate(&data, 4).unwrap();
        let rec = stride_reconstruct(&kept, 4, 1000).unwrap();
        let mse: f64 = data
            .iter()
            .zip(&rec)
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / 1000.0;
        assert!(mse > 0.1, "decimation should hurt oscillatory data, mse={mse}");
    }

    #[test]
    fn ratio_accounting() {
        assert!((stride_ratio(4, 100) - 4.0).abs() < 1e-12);
        assert!((stride_ratio(3, 10) - 2.5).abs() < 1e-12);
        assert_eq!(stride_ratio(4, 0), 1.0);
    }

    #[test]
    fn snapshot_series_roundtrip() {
        let frames: Vec<Vec<f32>> =
            (0..9).map(|t| vec![t as f32, t as f32 * 10.0]).collect();
        let kept = snapshot_decimate(&frames, 2).unwrap();
        assert_eq!(kept.len(), 5);
        // Even frames exact, odd frames interpolated.
        let f4 = snapshot_reconstruct(&kept, 2, 9, 4).unwrap();
        assert_eq!(f4, vec![4.0, 40.0]);
        let f3 = snapshot_reconstruct(&kept, 2, 9, 3).unwrap();
        assert_eq!(f3, vec![3.0, 30.0]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(stride_decimate(&[1.0], 0).is_err());
        assert!(stride_reconstruct(&[1.0], 0, 5).is_err());
        assert!(stride_reconstruct(&[1.0], 2, 100).is_err());
        assert!(snapshot_decimate(&[1u8], 0).is_err());
        let kept = vec![vec![0.0f32]];
        assert!(snapshot_reconstruct(&kept, 1, 1, 5).is_err());
    }
}
