//! H5-lite: a chunked, hierarchical container for grid snapshots.
//!
//! Nyx writes HDF5 with datasets like `/native_fields/baryon_density`.
//! H5-lite keeps the pieces the pipeline needs: hierarchical dataset
//! names, explicit dimensions, and chunked payloads with per-chunk CRCs
//! (so corruption is localized, as in real HDF5 checksum filters).
//!
//! ```text
//! magic "H5L1" | version u8 | reserved [3]u8 | num_datasets u32
//! per dataset: name_len u16 | name | ndim u8 | dims u64*ndim
//!              | chunk_values u32 | num_chunks u32
//!              | per chunk: payload_len u32 | crc32 u32
//! chunk payloads in order (f32 LE)
//! ```

use foresight_util::crc::crc32;
use foresight_util::{Error, Result};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"H5L1";
const VERSION: u8 = 1;
/// Default chunk size in values (1 MiB of f32).
pub const DEFAULT_CHUNK: usize = 1 << 18;

/// One named, dimensioned dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Hierarchical name, e.g. `/native_fields/baryon_density`.
    pub name: String,
    /// Dimensions (x fastest), product must equal `data.len()`.
    pub dims: Vec<u64>,
    /// Values.
    pub data: Vec<f32>,
}

/// An in-memory H5-lite document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct H5File {
    /// Datasets in file order.
    pub datasets: Vec<Dataset>,
}

impl H5File {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a dataset, validating dims against the data length.
    pub fn push(&mut self, name: impl Into<String>, dims: Vec<u64>, data: Vec<f32>) -> Result<()> {
        let prod: u64 = dims.iter().product();
        if prod != data.len() as u64 {
            return Err(Error::invalid(format!(
                "dims {:?} imply {} values, got {}",
                dims,
                prod,
                data.len()
            )));
        }
        self.datasets.push(Dataset { name: name.into(), dims, data });
        Ok(())
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Serializes with the given chunk size (values per chunk).
    pub fn to_bytes_chunked(&self, chunk_values: usize) -> Vec<u8> {
        let chunk_values = chunk_values.max(1);
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&[0, 0, 0]);
        out.extend_from_slice(&(self.datasets.len() as u32).to_le_bytes());
        let mut payloads = Vec::new();
        for ds in &self.datasets {
            out.extend_from_slice(&(ds.name.len() as u16).to_le_bytes());
            out.extend_from_slice(ds.name.as_bytes());
            out.push(ds.dims.len() as u8);
            for &d in &ds.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            let chunks: Vec<&[f32]> = if ds.data.is_empty() {
                vec![]
            } else {
                ds.data.chunks(chunk_values).collect()
            };
            out.extend_from_slice(&(chunk_values as u32).to_le_bytes());
            out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
            for c in chunks {
                let mut payload = Vec::with_capacity(c.len() * 4);
                for &v in c {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&crc32(&payload).to_le_bytes());
                payloads.push(payload);
            }
        }
        for p in payloads {
            out.extend_from_slice(&p);
        }
        out
    }

    /// Serializes with [`DEFAULT_CHUNK`].
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_chunked(DEFAULT_CHUNK)
    }

    /// Parses a document, verifying every chunk CRC.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if data.len() < *pos + n {
                return Err(Error::format("H5-lite file truncated"));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(Error::format("not an H5-lite file (bad magic)"));
        }
        if take(&mut pos, 1)?[0] != VERSION {
            return Err(Error::format("unsupported H5-lite version"));
        }
        take(&mut pos, 3)?;
        let nds = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if nds > 65536 {
            return Err(Error::format("implausible dataset count"));
        }
        struct Meta {
            name: String,
            dims: Vec<u64>,
            chunk_lens: Vec<(usize, u32)>,
        }
        let mut metas = Vec::with_capacity(nds);
        for _ in 0..nds {
            let nlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
                .map_err(|_| Error::format("dataset name is not UTF-8"))?;
            let ndim = take(&mut pos, 1)?[0] as usize;
            if ndim > 8 {
                return Err(Error::format("implausible rank"));
            }
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
            }
            let _chunk_values = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let nchunks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            if nchunks > (1 << 24) {
                return Err(Error::format("implausible chunk count"));
            }
            let mut chunk_lens = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                let plen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
                chunk_lens.push((plen, crc));
            }
            metas.push(Meta { name, dims, chunk_lens });
        }
        let mut out = Self::new();
        for m in metas {
            let mut values: Vec<f32> = Vec::new();
            for (i, (plen, crc)) in m.chunk_lens.iter().enumerate() {
                let payload = take(&mut pos, *plen)?;
                if crc32(payload) != *crc {
                    return Err(Error::format(format!(
                        "CRC mismatch in '{}' chunk {i}",
                        m.name
                    )));
                }
                if plen % 4 != 0 {
                    return Err(Error::format("chunk length not a multiple of 4"));
                }
                values.extend(
                    payload.chunks(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())),
                );
            }
            let prod: u64 = m.dims.iter().product();
            if prod != values.len() as u64 {
                return Err(Error::format(format!(
                    "dataset '{}' dims {:?} do not match {} values",
                    m.name,
                    m.dims,
                    values.len()
                )));
            }
            out.datasets.push(Dataset { name: m.name, dims: m.dims, data: values });
        }
        Ok(out)
    }

    /// Writes the document to a file.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads a document from a file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// Writes a Nyx snapshot under `/native_fields/<name>` datasets.
pub fn write_nyx(snap: &crate::field::NyxSnapshot, path: impl AsRef<Path>) -> Result<()> {
    let mut f = H5File::new();
    let n = snap.n_side as u64;
    for (name, data) in snap.fields() {
        f.push(format!("/native_fields/{name}"), vec![n, n, n], data.to_vec())?;
    }
    f.write(path)
}

/// Reads a Nyx snapshot written by [`write_nyx`].
pub fn read_nyx(path: impl AsRef<Path>, box_size: f64) -> Result<crate::field::NyxSnapshot> {
    let f = H5File::read(path)?;
    let get = |name: &str| -> Result<(usize, Vec<f32>)> {
        let ds = f
            .get(&format!("/native_fields/{name}"))
            .ok_or_else(|| Error::format(format!("missing dataset '{name}'")))?;
        if ds.dims.len() != 3 || ds.dims[0] != ds.dims[1] || ds.dims[1] != ds.dims[2] {
            return Err(Error::format(format!("dataset '{name}' is not a cube")));
        }
        Ok((ds.dims[0] as usize, ds.data.clone()))
    };
    let (n, baryon_density) = get("baryon_density")?;
    Ok(crate::field::NyxSnapshot {
        n_side: n,
        box_size,
        baryon_density,
        dark_matter_density: get("dark_matter_density")?.1,
        temperature: get("temperature")?.1,
        velocity_x: get("velocity_x")?.1,
        velocity_y: get("velocity_y")?.1,
        velocity_z: get("velocity_z")?.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> H5File {
        let mut f = H5File::new();
        f.push("/native_fields/baryon_density", vec![2, 2, 2], (0..8).map(|i| i as f32).collect())
            .unwrap();
        f.push("/derived_fields/vmag", vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        f
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let g = H5File::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.get("/derived_fields/vmag").unwrap().data[3], 4.0);
    }

    #[test]
    fn small_chunks_roundtrip() {
        let f = sample();
        let bytes = f.to_bytes_chunked(3); // forces multiple chunks
        let g = H5File::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn chunk_crc_detects_corruption() {
        let bytes = sample().to_bytes_chunked(2);
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x80;
        assert!(H5File::from_bytes(&bad).is_err());
    }

    #[test]
    fn dims_validated() {
        let mut f = H5File::new();
        assert!(f.push("/a", vec![3, 3], vec![1.0; 8]).is_err());
        assert!(f.push("/a", vec![2, 4], vec![1.0; 8]).is_ok());
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in [0usize, 5, 20, bytes.len() - 2] {
            assert!(H5File::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let mut f = H5File::new();
        f.push("/empty", vec![0], vec![]).unwrap();
        let g = H5File::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(g.get("/empty").unwrap().data.len(), 0);
    }
}
