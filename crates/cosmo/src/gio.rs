//! GIO-lite: a blocked, checksummed binary format for particle snapshots.
//!
//! GenericIO — HACC's native format — stores per-rank variable blocks with
//! CRC protection. GIO-lite keeps the properties the pipeline exercises
//! (named f32 columns, per-block CRC32, self-describing header) in a
//! deliberately small layout:
//!
//! ```text
//! magic "GIOL" | version u8 | reserved [3]u8 | num_rows u64 | num_fields u32
//! per field: name_len u16 | name bytes | payload_len u64 | crc32 u32
//! payloads in field order (f32 LE)
//! ```

use foresight_util::crc::crc32;
use foresight_util::{Error, Result};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GIOL";
const VERSION: u8 = 1;

/// An in-memory GIO-lite document: named f32 columns of equal length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GioFile {
    /// `(name, column)` pairs, written in order.
    pub fields: Vec<(String, Vec<f32>)>,
}

impl GioFile {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column; all columns must have the same length.
    pub fn push_field(&mut self, name: impl Into<String>, data: Vec<f32>) -> Result<()> {
        if let Some((_, first)) = self.fields.first() {
            if first.len() != data.len() {
                return Err(Error::invalid(format!(
                    "column length {} does not match {}",
                    data.len(),
                    first.len()
                )));
            }
        }
        self.fields.push((name.into(), data));
        Ok(())
    }

    /// Looks up a column by name.
    pub fn field(&self, name: &str) -> Option<&[f32]> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_slice())
    }

    /// Rows per column (0 if no fields).
    pub fn rows(&self) -> usize {
        self.fields.first().map_or(0, |(_, d)| d.len())
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&[0, 0, 0]);
        out.extend_from_slice(&(self.rows() as u64).to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(self.fields.len());
        for (name, data) in &self.fields {
            let mut payload = Vec::with_capacity(data.len() * 4);
            for &v in data {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            payloads.push(payload);
        }
        for p in payloads {
            out.extend_from_slice(&p);
        }
        out
    }

    /// Parses a document from bytes, verifying every CRC.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if data.len() < *pos + n {
                return Err(Error::format("GIO-lite file truncated"));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(Error::format("not a GIO-lite file (bad magic)"));
        }
        let version = take(&mut pos, 1)?[0];
        if version != VERSION {
            return Err(Error::format(format!("unsupported GIO-lite version {version}")));
        }
        take(&mut pos, 3)?;
        let rows = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let nfields = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if nfields > 4096 {
            return Err(Error::format("implausible field count"));
        }
        let mut meta = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            let nlen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
                .map_err(|_| Error::format("field name is not UTF-8"))?;
            let plen = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            meta.push((name, plen, crc));
        }
        let mut fields = Vec::with_capacity(nfields);
        for (name, plen, crc) in meta {
            let payload = take(&mut pos, plen)?;
            if crc32(payload) != crc {
                return Err(Error::format(format!("CRC mismatch in field '{name}'")));
            }
            if plen % 4 != 0 || plen / 4 != rows {
                return Err(Error::format(format!(
                    "field '{name}' has {plen} bytes, expected {} rows",
                    rows
                )));
            }
            let col: Vec<f32> =
                payload.chunks(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            fields.push((name, col));
        }
        Ok(Self { fields })
    }

    /// Writes the document to a file.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Reads a document from a file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// Writes a HACC snapshot as GIO-lite.
pub fn write_hacc(snap: &crate::field::HaccSnapshot, path: impl AsRef<Path>) -> Result<()> {
    let mut f = GioFile::new();
    for (name, data) in snap.fields() {
        f.push_field(name, data.to_vec())?;
    }
    f.write(path)
}

/// Reads a HACC snapshot from GIO-lite.
pub fn read_hacc(path: impl AsRef<Path>, box_size: f64) -> Result<crate::field::HaccSnapshot> {
    let f = GioFile::read(path)?;
    let get = |name: &str| -> Result<Vec<f32>> {
        f.field(name)
            .map(|d| d.to_vec())
            .ok_or_else(|| Error::format(format!("missing field '{name}'")))
    };
    Ok(crate::field::HaccSnapshot {
        x: get("x")?,
        y: get("y")?,
        z: get("z")?,
        vx: get("vx")?,
        vy: get("vy")?,
        vz: get("vz")?,
        box_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GioFile {
        let mut f = GioFile::new();
        f.push_field("x", vec![1.0, 2.0, 3.0]).unwrap();
        f.push_field("vx", vec![-0.5, 0.0, 0.5]).unwrap();
        f
    }

    #[test]
    fn roundtrip_bytes() {
        let f = sample();
        let bytes = f.to_bytes();
        let g = GioFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.field("vx").unwrap()[0], -0.5);
        assert!(g.field("nope").is_none());
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("gio_lite_test");
        let path = dir.join("sample.gio");
        let f = sample();
        f.write(&path).unwrap();
        let g = GioFile::read(&path).unwrap();
        assert_eq!(f, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc_detects_payload_corruption() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 2] ^= 0x01;
        let err = GioFile::from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(GioFile::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn mismatched_column_length_rejected() {
        let mut f = GioFile::new();
        f.push_field("a", vec![1.0, 2.0]).unwrap();
        assert!(f.push_field("b", vec![1.0]).is_err());
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(GioFile::from_bytes(&bytes).is_err());
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(GioFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_document() {
        let f = GioFile::new();
        let g = GioFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(g.rows(), 0);
        assert!(g.fields.is_empty());
    }
}
