//! Dimension conversion between HACC's 1-D arrays and 3-D shapes.
//!
//! GPU-SZ only accepts 3-D input, so the paper (§IV-B-4) splits each
//! 1,073,726,359-element array into eight 2^27 partitions (zero-padded)
//! and reshapes each to either 512x512x512 (best for GPU-SZ) or
//! 2,097,152x8x8 (best for cuZFP). These helpers implement the same
//! scheme for arbitrary sizes: split into fixed-size partitions, pad the
//! last with zeros, reshape, and reverse losslessly using the recorded
//! original length.

use foresight_util::{Error, Result};

/// A reshaped partition set: `parts` each hold exactly `shape` values.
#[derive(Debug, Clone)]
pub struct Reshaped {
    /// Partitions, each of `shape.0 * shape.1 * shape.2` values
    /// (x-fastest layout; the memory order is unchanged from the 1-D
    /// input, as in the paper — "we only pass the pointer and specify the
    /// data dimension").
    pub parts: Vec<Vec<f32>>,
    /// 3-D shape of each partition.
    pub shape: (usize, usize, usize),
    /// Original 1-D length (for the inverse conversion).
    pub original_len: usize,
}

/// The paper's cube policy scaled to `len`: the largest power-of-two cube
/// no bigger than the data (at least 8^3), so most partitions are full.
pub fn cube_shape_for(len: usize) -> (usize, usize, usize) {
    let mut side = 8usize;
    while (side * 2) * (side * 2) * (side * 2) <= len.max(512) && side < 512 {
        side *= 2;
    }
    (side, side, side)
}

/// The paper's thin policy scaled to `len`: an `(n/64) x 8 x 8` slab.
pub fn thin_shape_for(len: usize) -> (usize, usize, usize) {
    let nx = (len / 64).max(1);
    (nx, 8, 8)
}

/// Splits a 1-D array into zero-padded partitions of the given 3-D shape.
pub fn to_3d(data: &[f32], shape: (usize, usize, usize)) -> Result<Reshaped> {
    let part = shape.0 * shape.1 * shape.2;
    if part == 0 {
        return Err(Error::invalid("partition shape must be non-empty"));
    }
    let mut parts = Vec::with_capacity(data.len().div_ceil(part).max(1));
    if data.is_empty() {
        parts.push(vec![0.0; part]);
    }
    for chunk in data.chunks(part) {
        let mut p = chunk.to_vec();
        p.resize(part, 0.0);
        parts.push(p);
    }
    Ok(Reshaped { parts, shape, original_len: data.len() })
}

/// Reassembles the original 1-D array, dropping the zero padding.
pub fn to_1d(r: &Reshaped) -> Result<Vec<f32>> {
    let part = r.shape.0 * r.shape.1 * r.shape.2;
    for (i, p) in r.parts.iter().enumerate() {
        if p.len() != part {
            return Err(Error::invalid(format!(
                "partition {i} has {} values, expected {part}",
                p.len()
            )));
        }
    }
    if r.parts.len() * part < r.original_len {
        return Err(Error::invalid("partitions shorter than the recorded original length"));
    }
    let mut out = Vec::with_capacity(r.original_len);
    for p in &r.parts {
        let take = (r.original_len - out.len()).min(part);
        out.extend_from_slice(&p[..take]);
        if out.len() == r.original_len {
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_multiple() {
        let data: Vec<f32> = (0..512 * 3).map(|i| i as f32).collect();
        let r = to_3d(&data, (8, 8, 8)).unwrap();
        assert_eq!(r.parts.len(), 3);
        assert_eq!(to_1d(&r).unwrap(), data);
    }

    #[test]
    fn roundtrip_with_padding() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let r = to_3d(&data, (8, 8, 8)).unwrap();
        assert_eq!(r.parts.len(), 2);
        // Padding cells are zero.
        assert_eq!(r.parts[1][1000 - 512], 0.0 * 0.0 + r.parts[1][1000 - 512]);
        assert!(r.parts[1][488..].iter().all(|&v| v == 0.0));
        assert_eq!(to_1d(&r).unwrap(), data);
    }

    #[test]
    fn shape_policies() {
        // Paper scale: 2^27 values -> a 512 cube; our scaled variants
        // stay powers of two.
        assert_eq!(cube_shape_for(1 << 27), (512, 512, 512));
        assert_eq!(cube_shape_for(40_000), (32, 32, 32));
        assert_eq!(cube_shape_for(100), (8, 8, 8));
        assert_eq!(thin_shape_for(1 << 27), (1 << 21, 8, 8));
        assert_eq!(thin_shape_for(6400), (100, 8, 8));
    }

    #[test]
    fn empty_input_roundtrips() {
        let r = to_3d(&[], (8, 8, 8)).unwrap();
        assert_eq!(to_1d(&r).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn corrupt_partition_rejected() {
        let data: Vec<f32> = (0..100).collect::<Vec<_>>().iter().map(|&i| i as f32).collect();
        let mut r = to_3d(&data, (8, 8, 8)).unwrap();
        r.parts[0].pop();
        assert!(to_1d(&r).is_err());
        let mut r2 = to_3d(&data, (8, 8, 8)).unwrap();
        r2.original_len = 10_000;
        assert!(to_1d(&r2).is_err());
    }
}
