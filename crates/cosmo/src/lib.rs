//! Cosmology dataset substrate: containers, synthesis, and file formats.
//!
//! The paper evaluates on two datasets (Table II): a HACC particle
//! snapshot (six 1-D arrays in GenericIO format) and a Nyx grid snapshot
//! (six 3-D fields in HDF5). Neither is redistributable here, so this
//! crate synthesizes equivalents from the `nbody-sim` substrate (see
//! DESIGN.md for the substitution argument) and provides:
//!
//! - [`field`] — snapshot containers with Table II range metadata;
//! - [`synth`] — HACC/Nyx generation from a simulated universe;
//! - [`convert`] — the paper's 1-D <-> 3-D reshaping (§IV-B-4);
//! - [`gio`] — GIO-lite, a blocked CRC-protected particle format;
//! - [`h5lite`] — H5-lite, a chunked hierarchical grid format.

#![forbid(unsafe_code)]

pub mod convert;
pub mod decimate;
pub mod field;
pub mod gio;
pub mod ranks;
pub mod h5lite;
pub mod synth;

pub use field::{expected_range, in_expected_range, HaccSnapshot, NyxSnapshot, HACC_FIELDS, NYX_FIELDS};
pub use synth::{generate_hacc, generate_nyx, SynthOptions};
