//! MPI-rank decomposition of particle snapshots.
//!
//! The paper's HACC dataset "runs with 8x8x4 MPI processes, and each MPI
//! process saves its own portion of the dataset, leading to 8x8x4 data
//! partitions" (§IV-B-4) — the very structure that motivates the 1-D→3-D
//! conversion. This module reproduces it: spatial domain decomposition of
//! a snapshot into per-rank sub-boxes, per-rank GIO-lite files, and the
//! merge that reads them back.

use crate::field::HaccSnapshot;
use crate::gio::GioFile;
use foresight_util::{Error, Result};
use std::path::Path;

/// A rank grid `(rx, ry, rz)`; the paper's layout is `(8, 8, 4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankGrid {
    /// Ranks along x.
    pub rx: usize,
    /// Ranks along y.
    pub ry: usize,
    /// Ranks along z.
    pub rz: usize,
}

impl RankGrid {
    /// Creates a rank grid; all extents must be positive.
    pub fn new(rx: usize, ry: usize, rz: usize) -> Result<Self> {
        if rx == 0 || ry == 0 || rz == 0 {
            return Err(Error::invalid("rank grid extents must be positive"));
        }
        Ok(Self { rx, ry, rz })
    }

    /// The paper's 8x8x4 layout.
    pub fn paper() -> Self {
        Self { rx: 8, ry: 8, rz: 4 }
    }

    /// Total rank count.
    pub fn len(&self) -> usize {
        self.rx * self.ry * self.rz
    }

    /// True when the grid is degenerate (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank id of a position in `[0, box)^3`.
    pub fn rank_of(&self, x: f32, y: f32, z: f32, box_size: f64) -> usize {
        let cell = |v: f32, n: usize| -> usize {
            let t = (v as f64 / box_size).clamp(0.0, 1.0 - 1e-12);
            (t * n as f64) as usize
        };
        cell(x, self.rx) + self.rx * (cell(y, self.ry) + self.ry * cell(z, self.rz))
    }
}

/// Splits a snapshot into per-rank snapshots by particle position.
///
/// Every particle lands in exactly one rank; empty ranks are kept (they
/// occur in the real decomposition too when the density is uneven).
pub fn decompose(snap: &HaccSnapshot, grid: RankGrid) -> Vec<HaccSnapshot> {
    let mut ranks: Vec<HaccSnapshot> = (0..grid.len())
        .map(|_| HaccSnapshot { box_size: snap.box_size, ..Default::default() })
        .collect();
    for i in 0..snap.len() {
        let r = grid.rank_of(snap.x[i], snap.y[i], snap.z[i], snap.box_size);
        let dst = &mut ranks[r];
        dst.x.push(snap.x[i]);
        dst.y.push(snap.y[i]);
        dst.z.push(snap.z[i]);
        dst.vx.push(snap.vx[i]);
        dst.vy.push(snap.vy[i]);
        dst.vz.push(snap.vz[i]);
    }
    ranks
}

/// Merges per-rank snapshots back into one (rank order, as GenericIO
/// readers produce).
pub fn merge(ranks: &[HaccSnapshot]) -> Result<HaccSnapshot> {
    let Some(first) = ranks.first() else {
        return Err(Error::invalid("no ranks to merge"));
    };
    let mut out = HaccSnapshot { box_size: first.box_size, ..Default::default() };
    for r in ranks {
        if (r.box_size - first.box_size).abs() > 1e-9 {
            return Err(Error::invalid("ranks disagree on box size"));
        }
        out.x.extend_from_slice(&r.x);
        out.y.extend_from_slice(&r.y);
        out.z.extend_from_slice(&r.z);
        out.vx.extend_from_slice(&r.vx);
        out.vy.extend_from_slice(&r.vy);
        out.vz.extend_from_slice(&r.vz);
    }
    Ok(out)
}

/// Writes per-rank GIO-lite files `rank_<id>.gio` under `dir`.
pub fn write_ranks(ranks: &[HaccSnapshot], dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (i, snap) in ranks.iter().enumerate() {
        let mut f = GioFile::new();
        for (name, data) in snap.fields() {
            f.push_field(name, data.to_vec())?;
        }
        f.write(dir.join(format!("rank_{i}.gio")))?;
    }
    Ok(())
}

/// Reads `n_ranks` per-rank files written by [`write_ranks`].
pub fn read_ranks(dir: impl AsRef<Path>, n_ranks: usize, box_size: f64) -> Result<Vec<HaccSnapshot>> {
    let dir = dir.as_ref();
    let mut out = Vec::with_capacity(n_ranks);
    for i in 0..n_ranks {
        let snap = crate::gio::read_hacc(dir.join(format!("rank_{i}.gio")), box_size)?;
        out.push(snap);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, box_size: f64) -> HaccSnapshot {
        let mut s = HaccSnapshot { box_size, ..Default::default() };
        for i in 0..n {
            let t = i as f32;
            s.x.push((t * 37.1).rem_euclid(box_size as f32));
            s.y.push((t * 17.7).rem_euclid(box_size as f32));
            s.z.push((t * 53.3).rem_euclid(box_size as f32));
            s.vx.push((t * 0.1).sin() * 100.0);
            s.vy.push((t * 0.2).cos() * 100.0);
            s.vz.push(t);
        }
        s
    }

    #[test]
    fn decompose_partitions_all_particles() {
        let snap = sample(1000, 256.0);
        let grid = RankGrid::new(2, 2, 1).unwrap();
        let ranks = decompose(&snap, grid);
        assert_eq!(ranks.len(), 4);
        let total: usize = ranks.iter().map(|r| r.len()).sum();
        assert_eq!(total, 1000);
        // Rank-local positions stay in their sub-box.
        for (ri, r) in ranks.iter().enumerate() {
            for i in 0..r.len() {
                assert_eq!(
                    grid.rank_of(r.x[i], r.y[i], r.z[i], 256.0),
                    ri,
                    "particle assigned to wrong rank"
                );
            }
        }
    }

    #[test]
    fn merge_restores_multiset() {
        let snap = sample(500, 256.0);
        let grid = RankGrid::paper();
        assert_eq!(grid.len(), 256);
        let ranks = decompose(&snap, grid);
        let merged = merge(&ranks).unwrap();
        assert_eq!(merged.len(), snap.len());
        // Order changes (rank-major), but the (z, vz) multiset survives —
        // vz was a unique per-particle tag in `sample`.
        let mut orig: Vec<u32> = snap.vz.iter().map(|v| v.to_bits()).collect();
        let mut back: Vec<u32> = merged.vz.iter().map(|v| v.to_bits()).collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
    }

    #[test]
    fn file_roundtrip() {
        let snap = sample(300, 256.0);
        let grid = RankGrid::new(2, 1, 2).unwrap();
        let ranks = decompose(&snap, grid);
        let dir =
            std::env::temp_dir().join(format!("ranks_test_{}", std::process::id()));
        write_ranks(&ranks, &dir).unwrap();
        let back = read_ranks(&dir, grid.len(), 256.0).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back.len(), ranks.len());
        for (a, b) in ranks.iter().zip(&back) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.vz, b.vz);
        }
    }

    #[test]
    fn rank_of_boundaries() {
        let grid = RankGrid::new(8, 8, 4).unwrap();
        assert_eq!(grid.rank_of(0.0, 0.0, 0.0, 256.0), 0);
        // The far corner maps to the last rank, not out of range.
        assert_eq!(grid.rank_of(256.0, 256.0, 256.0, 256.0), grid.len() - 1);
        assert_eq!(grid.rank_of(255.9999, 255.9999, 255.9999, 256.0), grid.len() - 1);
    }

    #[test]
    fn invalid_inputs() {
        assert!(RankGrid::new(0, 1, 1).is_err());
        assert!(merge(&[]).is_err());
        let a = HaccSnapshot { box_size: 100.0, ..Default::default() };
        let b = HaccSnapshot { box_size: 200.0, ..Default::default() };
        assert!(merge(&[a, b]).is_err());
    }
}
