//! Dataset containers mirroring the paper's Table II.
//!
//! HACC snapshots are six 1-D particle arrays (position x/y/z, velocity
//! vx/vy/vz); Nyx snapshots are six 3-D grids (baryon density, dark matter
//! density, temperature, velocity x/y/z). Value-range metadata follows
//! Table II and is validated by the synthesis tests.

use foresight_util::stats::{summarize, Summary};

/// The six HACC fields, in file order.
pub const HACC_FIELDS: [&str; 6] = ["x", "y", "z", "vx", "vy", "vz"];

/// The six Nyx fields, in file order.
pub const NYX_FIELDS: [&str; 6] = [
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// Expected value range per Table II (loose containment bounds).
pub fn expected_range(field: &str) -> Option<(f64, f64)> {
    match field {
        "x" | "y" | "z" => Some((0.0, 256.0)),
        "vx" | "vy" | "vz" => Some((-1e4, 1e4)),
        "baryon_density" => Some((0.0, 1e5)),
        "dark_matter_density" => Some((0.0, 1e4)),
        "temperature" => Some((1e2, 1e7)),
        "velocity_x" | "velocity_y" | "velocity_z" => Some((-1e8, 1e8)),
        _ => None,
    }
}

/// A HACC-style particle snapshot: six 1-D single-precision arrays.
#[derive(Debug, Clone, Default)]
pub struct HaccSnapshot {
    /// Position arrays in `[0, box_size)`.
    pub x: Vec<f32>,
    /// Position arrays.
    pub y: Vec<f32>,
    /// Position arrays.
    pub z: Vec<f32>,
    /// Velocity arrays in the Table II `(-1e4, 1e4)` range.
    pub vx: Vec<f32>,
    /// Velocity arrays.
    pub vy: Vec<f32>,
    /// Velocity arrays.
    pub vz: Vec<f32>,
    /// Box side length (position units).
    pub box_size: f64,
}

impl HaccSnapshot {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the snapshot holds no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Named read-only views of the six fields, file order.
    pub fn fields(&self) -> [(&'static str, &[f32]); 6] {
        [
            ("x", &self.x),
            ("y", &self.y),
            ("z", &self.z),
            ("vx", &self.vx),
            ("vy", &self.vy),
            ("vz", &self.vz),
        ]
    }

    /// Mutable view of a field by name.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Vec<f32>> {
        match name {
            "x" => Some(&mut self.x),
            "y" => Some(&mut self.y),
            "z" => Some(&mut self.z),
            "vx" => Some(&mut self.vx),
            "vy" => Some(&mut self.vy),
            "vz" => Some(&mut self.vz),
            _ => None,
        }
    }

    /// Total uncompressed payload in bytes (six f32 arrays).
    pub fn payload_bytes(&self) -> u64 {
        self.len() as u64 * 6 * 4
    }

    /// Per-field summaries, file order.
    pub fn summaries(&self) -> Vec<(&'static str, Summary)> {
        self.fields().iter().map(|(n, d)| (*n, summarize(d))).collect()
    }
}

/// A Nyx-style grid snapshot: six 3-D single-precision fields on a cube.
#[derive(Debug, Clone, Default)]
pub struct NyxSnapshot {
    /// Grid side length (fields are `n_side^3`, x fastest).
    pub n_side: usize,
    /// Physical box side.
    pub box_size: f64,
    /// Baryon (gas) density.
    pub baryon_density: Vec<f32>,
    /// Dark matter density.
    pub dark_matter_density: Vec<f32>,
    /// Gas temperature.
    pub temperature: Vec<f32>,
    /// Gas velocity components (cm/s-like range).
    pub velocity_x: Vec<f32>,
    /// Gas velocity components.
    pub velocity_y: Vec<f32>,
    /// Gas velocity components.
    pub velocity_z: Vec<f32>,
}

impl NyxSnapshot {
    /// Cells per field.
    pub fn cells(&self) -> usize {
        self.n_side * self.n_side * self.n_side
    }

    /// Named read-only views of the six fields, file order.
    pub fn fields(&self) -> [(&'static str, &[f32]); 6] {
        [
            ("baryon_density", &self.baryon_density),
            ("dark_matter_density", &self.dark_matter_density),
            ("temperature", &self.temperature),
            ("velocity_x", &self.velocity_x),
            ("velocity_y", &self.velocity_y),
            ("velocity_z", &self.velocity_z),
        ]
    }

    /// Mutable view of a field by name.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Vec<f32>> {
        match name {
            "baryon_density" => Some(&mut self.baryon_density),
            "dark_matter_density" => Some(&mut self.dark_matter_density),
            "temperature" => Some(&mut self.temperature),
            "velocity_x" => Some(&mut self.velocity_x),
            "velocity_y" => Some(&mut self.velocity_y),
            "velocity_z" => Some(&mut self.velocity_z),
            _ => None,
        }
    }

    /// Total uncompressed payload in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.cells() as u64 * 6 * 4
    }

    /// Per-field summaries, file order.
    pub fn summaries(&self) -> Vec<(&'static str, Summary)> {
        self.fields().iter().map(|(n, d)| (*n, summarize(d))).collect()
    }
}

/// Checks a field's values against its Table II range.
pub fn in_expected_range(field: &str, data: &[f32]) -> bool {
    match expected_range(field) {
        Some((lo, hi)) => {
            let s = summarize(data);
            s.min >= lo && s.max <= hi
        }
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_names_and_ranges() {
        for f in HACC_FIELDS.iter().chain(NYX_FIELDS.iter()) {
            assert!(expected_range(f).is_some(), "missing range for {f}");
        }
        assert!(expected_range("unknown").is_none());
    }

    #[test]
    fn hacc_views_and_sizes() {
        let snap = HaccSnapshot {
            x: vec![1.0; 10],
            y: vec![2.0; 10],
            z: vec![3.0; 10],
            vx: vec![0.0; 10],
            vy: vec![0.0; 10],
            vz: vec![0.0; 10],
            box_size: 256.0,
        };
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.payload_bytes(), 240);
        assert_eq!(snap.fields()[0].0, "x");
        assert_eq!(snap.fields()[5].1[0], 0.0);
    }

    #[test]
    fn range_check_works() {
        assert!(in_expected_range("x", &[0.5, 100.0, 255.9]));
        assert!(!in_expected_range("x", &[-1.0]));
        assert!(!in_expected_range("vx", &[2e4]));
        assert!(in_expected_range("temperature", &[150.0, 9e6]));
    }

    #[test]
    fn nyx_field_mut_roundtrip() {
        let mut snap = NyxSnapshot { n_side: 2, ..Default::default() };
        snap.baryon_density = vec![1.0; 8];
        snap.field_mut("baryon_density").unwrap()[0] = 9.0;
        assert_eq!(snap.baryon_density[0], 9.0);
        assert!(snap.field_mut("nope").is_none());
        assert_eq!(snap.cells(), 8);
    }
}
