//! Property tests for the bitstream and CRC utilities.

use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::crc::crc32;
use proptest::prelude::*;

proptest! {
    /// Any sequence of (value, width) writes reads back identically.
    #[test]
    fn bitstream_roundtrip(ops in prop::collection::vec((any::<u64>(), 1u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v, n);
        }
        let total_bits: u64 = ops.iter().map(|&(_, n)| n as u64).sum();
        prop_assert_eq!(w.bit_len(), total_bits);
        let bytes = w.clone().into_bytes();
        prop_assert_eq!(bytes.len() as u64, total_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &ops {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    /// Reading more bits than written must fail, never wrap or panic.
    #[test]
    fn bitstream_overread_errors(nbits in 0u32..100) {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, nbits.min(64));
        if nbits > 64 {
            w.write_bits(u64::MAX, nbits - 64);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // Consume the padded stream fully, then one more bit must error.
        let padded = (nbits as u64).div_ceil(8) * 8;
        let mut left = padded;
        while left > 0 {
            let take = left.min(64) as u32;
            r.read_bits(take).unwrap();
            left -= take as u64;
        }
        prop_assert!(r.read_bits(1).is_err());
    }

    /// CRC32 is deterministic and sensitive to order.
    #[test]
    fn crc_deterministic(data in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(crc32(&data), crc32(&data));
        if data.len() >= 2 && data.first() != data.last() {
            let mut rev = data.clone();
            rev.reverse();
            prop_assert_ne!(crc32(&rev), crc32(&data));
        }
    }

    /// Concatenation under streaming equals one-shot.
    #[test]
    fn crc_streaming(a in prop::collection::vec(any::<u8>(), 0..256),
                     b in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut h = foresight_util::crc::Crc32::new();
        h.update(&a);
        h.update(&b);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        prop_assert_eq!(h.finish(), crc32(&joined));
    }
}
