//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! GenericIO — the HACC file format the paper's datasets ship in — protects
//! every block with a CRC; our GIO-lite format keeps that property. The table
//! is built at first use and the update loop processes a byte per step, which
//! is plenty for the file sizes the reproduction handles.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xff) as usize];
        }
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        data[10] = 0x55;
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
