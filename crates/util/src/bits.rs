//! Bit-granular stream I/O.
//!
//! Both compressors need sub-byte output: SZ's Huffman stage emits
//! variable-length codes and ZFP's embedded coder emits individual
//! significance bits. [`BitWriter`] and [`BitReader`] provide an LSB-first
//! bit stream over a byte buffer: the first bit written is the lowest bit of
//! the first byte. Up to 64 bits can be moved per call.

use crate::error::{Error, Result};

/// Accumulates bits LSB-first into a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Partially-filled tail word.
    acc: u64,
    /// Number of valid bits in `acc` (0..64).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity for roughly `nbytes` of output.
    pub fn with_capacity(nbytes: usize) -> Self {
        Self { buf: Vec::with_capacity(nbytes), acc: 0, nbits: 0 }
    }

    /// Appends the low `n` bits of `value` (`n <= 64`).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 { value } else { value & ((1u64 << n) - 1) };
        self.acc |= value << self.nbits;
        let free = 64 - self.nbits;
        if n < free {
            self.nbits += n;
        } else {
            // `acc` is full: flush it and keep the spill-over.
            let full = self.acc;
            self.buf.extend_from_slice(&full.to_le_bytes());
            self.acc = if free == 64 { 0 } else { value >> free };
            self.nbits = n - free;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        (self.buf.len() as u64) * 8 + self.nbits as u64
    }

    /// Pads with zero bits to the next byte boundary and returns the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let nbytes = self.nbits.div_ceil(8) as usize;
        let tail = self.acc.to_le_bytes();
        self.buf.extend_from_slice(&tail[..nbytes]);
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, acc: 0, nbits: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        if self.nbits > 56 {
            return;
        }
        if self.pos + 8 <= self.data.len() {
            // Fast path: one unaligned little-endian word load, inserting as
            // many whole bytes as the accumulator has room for (1..=8).
            let w = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
            let take = (64 - self.nbits) >> 3;
            self.acc |= (w & (u64::MAX >> (64 - 8 * take))) << self.nbits;
            self.pos += take as usize;
            self.nbits += 8 * take;
        } else {
            while self.nbits <= 56 && self.pos < self.data.len() {
                self.acc |= (self.data[self.pos] as u64) << self.nbits;
                self.pos += 1;
                self.nbits += 8;
            }
        }
    }

    /// Reads the next `n` bits (`n <= 64`), erroring on stream exhaustion.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        if n <= 56 {
            if self.nbits < n {
                self.refill();
                if self.nbits < n {
                    return Err(Error::corrupt("bit stream exhausted"));
                }
            }
            let v = self.acc & ((1u64 << n) - 1);
            self.acc >>= n;
            self.nbits -= n;
            Ok(v)
        } else {
            // Split large reads: low 32 bits then the rest.
            let lo = self.read_bits(32)?;
            let hi = self.read_bits(n - 32)?;
            Ok(lo | (hi << 32))
        }
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Returns the next `n` bits (`n <= 56`) without consuming them.
    ///
    /// Unlike [`BitReader::read_bits`] this never fails: bits past the end
    /// of the stream read as zero. Callers that act on the peeked value must
    /// [`BitReader::consume`] only as many bits as the stream still holds.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 56);
        if n == 0 {
            return 0;
        }
        if self.nbits < n {
            self.refill();
        }
        self.acc & ((1u64 << n) - 1)
    }

    /// Discards `n` bits (`n <= 56`), erroring on stream exhaustion.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<()> {
        debug_assert!(n <= 56);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(Error::corrupt("bit stream exhausted"));
            }
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Number of bits still available.
    pub fn remaining_bits(&self) -> u64 {
        self.nbits as u64 + 8 * (self.data.len() - self.pos) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xff, 8);
        w.write_bits(0, 5);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bits(5).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 9);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.into_bytes().len(), 2);
    }

    #[test]
    fn exhausted_stream_errors() {
        let bytes = [0xabu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xab);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn masks_high_bits_of_value() {
        let mut w = BitWriter::new();
        // Only the low 4 bits of 0xff must land in the stream.
        w.write_bits(0xff, 4);
        w.write_bits(0, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0f]);
    }

    #[test]
    fn zero_bit_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn interleaved_single_bits() {
        let mut w = BitWriter::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101_0110_1011, 12);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(12), 0b1101_0110_1011);
        assert_eq!(r.peek_bits(12), 0b1101_0110_1011);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.peek_bits(8), 0b1101_0110);
    }

    #[test]
    fn peek_zero_pads_past_end_but_consume_errors() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        // Only 8 real bits exist; the peek window beyond them reads zero.
        assert_eq!(r.peek_bits(12), 0x0ff);
        assert!(r.consume(9).is_err());
        assert!(r.consume(8).is_ok());
        assert_eq!(r.peek_bits(12), 0);
        assert!(r.consume(1).is_err());
    }

    #[test]
    fn peek_consume_tracks_read_bits() {
        let vals: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) & 0x1fff).collect();
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_bits(v, 13);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.peek_bits(13), v);
            r.consume(13).unwrap();
        }
    }

    #[test]
    fn word_boundary_crossings() {
        // Write 13-bit chunks so the accumulator boundary is crossed at
        // varying offsets.
        let vals: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) & 0x1fff).collect();
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_bits(v, 13);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_bits(13).unwrap(), v);
        }
    }
}
