//! Chunked parallel helpers.
//!
//! The compressor crates parallelize over fixed-size blocks whose outputs
//! have data-dependent sizes; the helpers here capture the common pattern of
//! "map independent chunks in parallel, then concatenate in order", plus a
//! scoped way to bound the number of worker threads so the benchmark harness
//! can measure 1-core vs N-core throughput (paper Fig. 8).

use rayon::prelude::*;

/// Maps each input chunk to an output `Vec` in parallel, preserving order.
///
/// This is the backbone of both multicore compressor backends: each block
/// compresses independently and the variable-size outputs are concatenated
/// deterministically.
pub fn par_map_chunks<T, F>(data: &[T], chunk: usize, f: F) -> Vec<Vec<u8>>
where
    T: Sync,
    F: Fn(usize, &[T]) -> Vec<u8> + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    data.par_chunks(chunk).enumerate().map(|(i, c)| f(i, c)).collect()
}

/// Runs `f` inside a rayon pool restricted to `threads` workers.
///
/// Used by the throughput benchmarks to pin the degree of parallelism
/// (e.g. 1 thread to emulate the paper's single-core Xeon measurements).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build thread pool");
    pool.install(f)
}

/// Splits `len` items into per-worker ranges of near-equal size.
///
/// Returns `(start, end)` pairs covering `0..len` without overlap. The
/// remainder is spread over the leading ranges so sizes differ by at most 1.
pub fn split_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < rem);
        if sz == 0 {
            break;
        }
        out.push((start, start + sz));
        start += sz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_chunks_preserves_order() {
        let data: Vec<u32> = (0..1000).collect();
        let outs = par_map_chunks(&data, 37, |i, c| {
            let mut v = vec![i as u8];
            v.extend(c.iter().map(|&x| (x & 0xff) as u8));
            v
        });
        assert_eq!(outs.len(), 1000usize.div_ceil(37));
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o[0], i as u8);
        }
        // Concatenated payloads must reproduce the input order.
        let payload: Vec<u8> = outs.iter().flat_map(|o| o[1..].iter().copied()).collect();
        let expect: Vec<u8> = data.iter().map(|&x| (x & 0xff) as u8).collect();
        assert_eq!(payload, expect);
    }

    #[test]
    fn with_threads_bounds_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
        let n = with_threads(1, rayon::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn split_ranges_covers_everything() {
        for len in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 3, 8, 150] {
                let ranges = split_ranges(len, parts);
                let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                // Contiguity.
                let mut cursor = 0;
                for &(a, b) in &ranges {
                    assert_eq!(a, cursor);
                    assert!(b > a);
                    cursor = b;
                }
                // Balance within 1.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|(a, b)| b - a).min(),
                    ranges.iter().map(|(a, b)| b - a).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }
}
