//! Workspace-wide error type.
//!
//! Every crate in the workspace funnels failures through [`Error`] so that
//! the top-level framework (Foresight) can report a uniform diagnostic for
//! any stage of a pipeline — codec, file format, analysis, or scheduler.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for the Foresight reproduction workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A compressed stream was malformed, truncated, or failed validation.
    Corrupt(String),
    /// The caller passed an argument outside the supported domain
    /// (e.g. a non-power-of-two FFT length or a zero error bound).
    InvalidArgument(String),
    /// An operation exceeded a configured resource limit
    /// (e.g. simulated GPU device memory).
    ResourceExhausted(String),
    /// A file format error from the GIO-lite / H5-lite readers.
    Format(String),
    /// An underlying I/O error.
    Io(std::io::Error),
    /// A configuration file could not be parsed or validated.
    Config(String),
    /// A workflow/scheduler error (cyclic dependencies, unknown job ids...).
    Workflow(String),
    /// A (simulated) device fault: failed transfer, kernel abort, or a
    /// transient allocation failure that exhausted its retry budget.
    DeviceFault(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            Error::Format(msg) => write!(f, "format error: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Config(msg) => write!(f, "config error: {msg}"),
            Error::Workflow(msg) => write!(f, "workflow error: {msg}"),
            Error::DeviceFault(msg) => write!(f, "device fault: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Shorthand constructor for [`Error::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// Shorthand constructor for [`Error::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Shorthand constructor for [`Error::Format`].
    pub fn format(msg: impl Into<String>) -> Self {
        Error::Format(msg.into())
    }

    /// Shorthand constructor for [`Error::DeviceFault`].
    pub fn device_fault(msg: impl Into<String>) -> Self {
        Error::DeviceFault(msg.into())
    }

    /// True for transient device-level failures that a caller may retry
    /// or route to a CPU fallback path.
    pub fn is_device_fault(&self) -> bool {
        matches!(self, Error::DeviceFault(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = Error::corrupt("bad magic");
        assert!(e.to_string().contains("bad magic"));
        let e = Error::invalid("eb must be > 0");
        assert!(e.to_string().contains("eb must be > 0"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let ioe = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = ioe.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
