//! ASCII table and CSV emitters for the benchmark binaries.
//!
//! Every `figN`/`tableN` regenerator prints a human-readable table to stdout
//! and writes the same rows as CSV so EXPERIMENTS.md (and any plotting tool)
//! can consume them. This module is deliberately tiny: column alignment and
//! CSV quoting, nothing more.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory table: a header row plus data rows of equal width.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; panics if the width differs from the header.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+-{}-", "-".repeat(*w));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", h, w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for i in 0..ncols {
                let _ = write!(out, "| {:w$} ", row[i], w = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing `,`, `"`, newline).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut emit = |row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header);
        for row in &self.rows {
            emit(row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_renders_aligned() {
        let mut t = Table::new(["field", "psnr"]);
        t.push_row(["baryon_density", "88.45"]);
        t.push_row(["vz", "102.3"]);
        let s = t.to_ascii();
        assert!(s.contains("| field          | psnr  |"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"he said \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5000");
        assert!(fmt_f64(2e-6).contains('e'));
        assert!(fmt_f64(2e7).contains('e'));
    }
}
