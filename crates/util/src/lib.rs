//! Shared low-level utilities for the Foresight reproduction workspace.
//!
//! This crate holds the pieces every other crate needs and nothing
//! domain-specific: an error type, bit-granular stream I/O (used by both
//! compressor crates), CRC32 checksums (used by the GIO-lite file format),
//! chunked parallel helpers, wall-clock timers, running statistics, a
//! tiny ASCII table/CSV formatter used by the benchmark binaries, SHA-256
//! (golden-vector digests), and the telemetry layer (spans, metrics,
//! Chrome-trace/flamegraph export).

#![forbid(unsafe_code)]

pub mod bits;
pub mod bytes;
pub mod crc;
pub mod error;
pub mod json;
pub mod parallel;
pub mod sha256;
pub mod stats;
pub mod table;
pub mod telemetry;
pub mod timer;

pub use bytes::ByteReader;
pub use error::{Error, Result};
