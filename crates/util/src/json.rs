//! Minimal JSON parser and writer.
//!
//! The pipeline config (`foresight::config`) is a small, shallow JSON
//! document; this module implements exactly the JSON it needs — all of
//! RFC 8259 syntax on the read side, and a compact writer on the emit
//! side — without an external dependency. Objects preserve insertion
//! order so emitted configs stay diffable.

use crate::{Error, Result};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64, like most dynamic parsers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Borrows the fields of an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-tripping form.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Config(format!("json error at byte {}: {}", self.pos, msg))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 character from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -2.5e1 ").unwrap(), Value::Number(-25.0));
        assert_eq!(
            Value::parse(r#""a\nbA""#).unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{ nope", "[1,]", "{\"a\":1,}", "\"open", "01x", "{} trailing", "[1 2]"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_through_writer() {
        let text = r#"{"input":{"n":32,"f":0.1},"list":[1,2.5,"s\"q",true,null]}"#;
        let v = Value::parse(text).unwrap();
        let emitted = v.to_json();
        assert_eq!(Value::parse(&emitted).unwrap(), v);
        assert_eq!(emitted, text);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(Value::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn object_order_preserved() {
        let v = Value::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<_> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
