//! Wall-clock timing and throughput formatting.
//!
//! The throughput experiments (paper Figs. 7–10) need both real measured
//! times (our CPU backends) and simulated times (the GPU model). [`Timer`]
//! covers the former; [`throughput_gbs`] converts either into the GB/s units
//! the paper plots.
//!
//! Timing is unified on the telemetry clock: [`timed`] (re-exported from
//! [`crate::telemetry`]) is the instrumented form of [`time`] — identical
//! wall-clock measurement, but the interval is also recorded as a named
//! span the trace exporters can see. `gpu_sim`'s simulated-clock
//! `PhaseTotals` and CBench's `sim_seconds` flow into the same collector
//! as sim slices, so no stage reports time through a struct the exporters
//! cannot reach.

pub use crate::telemetry::timed;
use std::time::{Duration, Instant};

/// Simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Starts a timer.
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed `Duration`.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Timer::new();
    let r = f();
    (r, t.elapsed_secs())
}

/// Converts `(bytes, seconds)` into GB/s (decimal GB, as the paper uses).
pub fn throughput_gbs(bytes: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 / 1e9 / seconds
}

/// Formats a byte count with binary-ish units for human-readable reports.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1000.0 && unit < UNITS.len() - 1 {
        v /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        assert!((throughput_gbs(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert!((throughput_gbs(500_000_000, 0.25) - 2.0).abs() < 1e-12);
        assert!(throughput_gbs(1, 0.0).is_infinite());
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(1_500), "1.50 KB");
        assert_eq!(format_bytes(6_600_000_000), "6.60 GB");
    }

    #[test]
    fn timer_measures_something() {
        let (sum, secs) = time(|| (0..100_000u64).sum::<u64>());
        assert_eq!(sum, 4999950000);
        assert!(secs >= 0.0);
    }
}
