//! Checked little-endian byte-slice reader for untrusted stream headers.
//!
//! Both compressor crates parse binary headers from byte slices that may
//! be truncated or corrupted. Raw `stream[o..o + 8].try_into().unwrap()`
//! slicing panics on short input unless every offset is pre-validated;
//! [`ByteReader`] centralizes the bounds checks so malformed input can
//! only ever produce [`Error::Corrupt`], never a panic.

use crate::{Error, Result};

/// Cursor over an untrusted byte slice; every read is bounds-checked.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at offset zero.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current offset from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corrupt(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes `n` bytes of fixed-size array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        // Length is guaranteed by take(); this conversion cannot fail.
        Ok(s.try_into().expect("take returned N bytes"))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32_le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian u64.
    pub fn u64_le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian f32.
    pub fn f32_le(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian f64.
    pub fn f64_le(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Consumes a magic tag, erroring when it does not match.
    pub fn expect_magic(&mut self, magic: &[u8], what: &str) -> Result<()> {
        let got = self.take(magic.len())?;
        if got != magic {
            return Err(Error::corrupt(format!("bad magic (not {what})")));
        }
        Ok(())
    }

    /// Reads a little-endian u64 and converts it to usize, rejecting
    /// values that do not fit (32-bit hosts) or exceed `cap`.
    pub fn u64_le_capped(&mut self, cap: u64, what: &str) -> Result<usize> {
        let v = self.u64_le()?;
        if v > cap {
            return Err(Error::corrupt(format!("implausible {what}: {v} > {cap}")));
        }
        usize::try_from(v).map_err(|_| Error::corrupt(format!("{what} overflows usize")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_all_widths_in_order() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64_le().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f32_le().unwrap(), 1.5);
        assert_eq!(r.f64_le().unwrap(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u32_le().is_err());
        assert_eq!(r.pos(), 0, "failed read consumes nothing");
        assert!(r.take(4).is_err());
        assert!(r.take(3).is_ok());
        assert!(r.u8().is_err());
    }

    #[test]
    fn magic_checked() {
        let mut r = ByteReader::new(b"SZRSxxxx");
        assert!(r.expect_magic(b"SZRS", "an SZRS stream").is_ok());
        let mut r = ByteReader::new(b"NOPE");
        let e = r.expect_magic(b"SZRS", "an SZRS stream").unwrap_err();
        assert!(e.to_string().contains("bad magic"));
        let mut r = ByteReader::new(b"SZ");
        assert!(r.expect_magic(b"SZRS", "an SZRS stream").is_err());
    }

    #[test]
    fn capped_u64_rejects_implausible_sizes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        buf.extend_from_slice(&42u64.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert!(r.u64_le_capped(1 << 40, "dim").is_err());
        assert_eq!(r.u64_le_capped(1 << 40, "dim").unwrap(), 42);
    }
}
