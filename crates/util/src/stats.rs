//! Running statistics (Welford) and small numeric summaries.
//!
//! The paper reports averages and standard deviations over repeated kernel
//! timings (Section V-C: 10 warm-up runs, 10 measured runs); [`Running`]
//! accumulates those without storing samples. `summary` helpers compute the
//! min/max/range facts Table II reports per field.

/// Welford running mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Min/max/mean summary of a slice of `f32` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value (`+inf` for an empty slice).
    pub min: f64,
    /// Largest value (`-inf` for an empty slice).
    pub max: f64,
    /// Arithmetic mean (0 for an empty slice).
    pub mean: f64,
    /// Number of values.
    pub count: usize,
}

impl Summary {
    /// `max - min`; the value range used for REL error bounds.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Computes a [`Summary`] over `data`.
pub fn summarize(data: &[f32]) -> Summary {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    for &x in data {
        let x = x as f64;
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    Summary {
        min,
        max,
        mean: if data.is_empty() { 0.0 } else { sum / data.len() as f64 },
        count: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, -3.0, 2.0]);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
        assert!((s.mean - 0.0).abs() < 1e-12);
        assert_eq!(s.range(), 5.0);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.min.is_infinite() && s.max.is_infinite());
    }
}
