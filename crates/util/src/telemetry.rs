//! Foresight telemetry: structured spans, a metrics registry, and
//! standard trace exports.
//!
//! The paper's core deliverable is a *measurement* (Fig. 7 kernel-vs-PCIe
//! breakdowns, rate-distortion sweeps); this module is the measurement
//! substrate the whole workspace shares. It records three kinds of data:
//!
//! - **Spans** — RAII guards ([`span`], [`timed`]) that capture nested
//!   begin/end intervals on the *wall clock*. Nesting is tracked through a
//!   thread-local stack; work fanned out across rayon workers keeps its
//!   logical parent via [`current_span`] + [`span_with_parent`].
//! - **Sim slices** ([`sim_slice`]) — intervals on a *simulated clock*
//!   (the `gpu-sim` device model), keyed by a process (one per simulated
//!   device) and a track (one per phase: kernel, h2d, d2h, init, free,
//!   fault). Sim slices are deterministic for a fixed seed, which makes
//!   the Chrome-trace export golden-testable.
//! - **Metrics** — counters, gauges, and log-bucketed histograms with
//!   p50/p95/p99 summaries ([`MetricsRegistry`]). A global registry backs
//!   [`counter`]/[`gauge`]/[`observe`]; standalone registries serve
//!   always-on bookkeeping (e.g. the pipeline resilience summary).
//!
//! # Zero cost when off
//!
//! Collection is disabled by default. Every recording entry point first
//! checks one relaxed atomic load and returns immediately when disabled —
//! no allocation, no locking, no clock reads beyond what the caller asked
//! for ([`timed`] still returns wall seconds because its callers need the
//! measurement either way). With telemetry off, instrumented code paths
//! produce byte-identical outputs to their un-instrumented form; a test
//! in `crates/core/tests/telemetry_pipeline.rs` guards this.
//!
//! # Exports
//!
//! [`TelemetrySnapshot`] clones the collected state; [`chrome_trace`]
//! renders it as Chrome trace-event JSON (loadable in Perfetto; sim
//! processes are deterministic, the host process can be excluded for
//! golden tests) and [`flamegraph`] as collapsed-stack text for
//! `inferno`/`flamegraph.pl`.

use crate::json::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(Collector::new)
}

/// Turns collection on. Until this is called every telemetry entry point
/// is a no-op.
pub fn enable() {
    collector(); // pin the epoch before the first measurement
    ENABLED.store(true, Ordering::Release);
}

/// Turns collection off (already-collected data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// True when collection is on. One relaxed atomic load — cheap enough
/// for hot paths.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disables collection and clears everything collected so far (spans,
/// slices, metrics). Intended for tests; runs start clean by default.
pub fn reset() {
    disable();
    let c = collector();
    c.spans.lock().unwrap().clear();
    c.slices.lock().unwrap().clear();
    c.metrics.clear();
}

struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    slices: Mutex<Vec<SimSlice>>,
    metrics: MetricsRegistry,
}

impl Collector {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            slices: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
}

// ---------------------------------------------------------------------------
// Spans (wall clock)
// ---------------------------------------------------------------------------

/// Identifier of a live or finished span (`0` means "no span").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no parent" sentinel.
    pub const NONE: SpanId = SpanId(0);
}

/// One finished span as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span name, e.g. `"sz.quantize"`.
    pub name: String,
    /// Key/value attributes attached before the guard dropped.
    pub attrs: Vec<(String, String)>,
    /// Begin time in microseconds since the collector epoch.
    pub wall_start_us: f64,
    /// Duration in microseconds.
    pub wall_dur_us: f64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span on this thread, for stitching parents across
/// thread boundaries (capture before `par_iter`, pass to
/// [`span_with_parent`] inside the closure).
pub fn current_span() -> SpanId {
    if !is_enabled() {
        return SpanId::NONE;
    }
    SPAN_STACK.with(|s| SpanId(s.borrow().last().copied().unwrap_or(0)))
}

/// RAII span guard: records a [`SpanRecord`] when dropped. Inert (and
/// free) when telemetry is disabled.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    /// 0 for inert guards.
    id: u64,
    parent: u64,
    name: String,
    attrs: Vec<(String, String)>,
    start_us: f64,
}

/// Opens a span named `name`, parented to the innermost live span on
/// this thread.
pub fn span(name: impl AsRef<str>) -> Span {
    if !is_enabled() {
        return Span::inert();
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    Span::open(name.as_ref(), parent)
}

/// Opens a span with an explicit parent — the cross-thread form used
/// under rayon/crossbeam where the thread-local stack does not carry
/// over. The new span still becomes the innermost span *on this thread*,
/// so nested [`span`] calls chain correctly.
pub fn span_with_parent(name: impl AsRef<str>, parent: SpanId) -> Span {
    if !is_enabled() {
        return Span::inert();
    }
    Span::open(name.as_ref(), parent.0)
}

impl Span {
    fn inert() -> Self {
        Self { id: 0, parent: 0, name: String::new(), attrs: Vec::new(), start_us: 0.0 }
    }

    fn open(name: &str, parent: u64) -> Self {
        let c = collector();
        let id = c.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Self {
            id,
            parent,
            name: name.to_string(),
            attrs: Vec::new(),
            start_us: c.now_us(),
        }
    }

    /// This span's id (NONE when telemetry is disabled).
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Attaches an attribute; shows up under `args` in the Chrome trace.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        if self.id != 0 {
            self.attrs.push((key.into(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let c = collector();
        let end = c.now_us();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                // Out-of-order drop (guards held across scopes); remove
                // wherever it sits rather than corrupting the stack.
                s.retain(|&x| x != self.id);
            }
        });
        c.spans.lock().unwrap().push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            attrs: std::mem::take(&mut self.attrs),
            wall_start_us: self.start_us,
            wall_dur_us: (end - self.start_us).max(0.0),
        });
    }
}

/// Times `f` on the wall clock, returning `(result, seconds)` — and, when
/// telemetry is enabled, records the interval as a span named `name`.
///
/// This is the unified replacement for `timer::time` on instrumented
/// paths: callers keep the wall measurement they always had, and the
/// exporters see the same interval as a span.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> (R, f64) {
    let _span = if is_enabled() { Some(span(name)) } else { None };
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

// ---------------------------------------------------------------------------
// Sim slices (simulated clock)
// ---------------------------------------------------------------------------

/// One interval on a simulated clock.
#[derive(Debug, Clone)]
pub struct SimSlice {
    /// Simulated device/node this happened on (a Chrome-trace process).
    pub process: String,
    /// Phase lane within the process (a Chrome-trace track): `kernel`,
    /// `h2d`, `d2h`, `init`, `free`, `fault`.
    pub track: String,
    /// Event label, e.g. `"cuzfp"` or `"h2d!transfer"`.
    pub name: String,
    /// Start in simulated seconds since device creation.
    pub sim_start_s: f64,
    /// Duration in simulated seconds.
    pub sim_dur_s: f64,
}

/// Records an interval on a simulated clock. No-op when disabled.
pub fn sim_slice(process: &str, track: &str, name: &str, sim_start_s: f64, sim_dur_s: f64) {
    if !is_enabled() {
        return;
    }
    collector().slices.lock().unwrap().push(SimSlice {
        process: process.to_string(),
        track: track.to_string(),
        name: name.to_string(),
        sim_start_s,
        sim_dur_s,
    });
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Adds `delta` to the global counter `name`. No-op when disabled.
pub fn counter(name: &str, delta: u64) {
    if is_enabled() {
        collector().metrics.counter(name, delta);
    }
}

/// Sets the global gauge `name`. No-op when disabled.
pub fn gauge(name: &str, value: f64) {
    if is_enabled() {
        collector().metrics.gauge(name, value);
    }
}

/// Records one sample into the global histogram `name`. No-op when
/// disabled.
pub fn observe(name: &str, value: f64) {
    if is_enabled() {
        collector().metrics.observe(name, value);
    }
}

/// A log₂-bucketed histogram of non-negative `f64` samples.
///
/// Finite positive samples land in the bucket of their binary exponent
/// (clamped to `[MIN_EXP, MAX_EXP]`, so subnormals collapse into the
/// lowest bucket); zeros and negatives are counted separately, as are
/// `+inf` and NaN. Quantiles interpolate at the geometric midpoint of the
/// winning bucket, which is exact to within a factor of √2 — plenty for
/// p50/p95/p99 over timing data spanning nine decades.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    zeros: u64,
    infs: u64,
    nans: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Lowest binary exponent with its own bucket (2⁻⁶⁴ ≈ 5e-20 s).
    pub const MIN_EXP: i32 = -64;
    /// Highest binary exponent with its own bucket (2⁶⁴ ≈ 1.8e19).
    pub const MAX_EXP: i32 = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        let n = (Self::MAX_EXP - Self::MIN_EXP + 1) as usize;
        Self {
            buckets: vec![0; n],
            zeros: 0,
            infs: 0,
            nans: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        let exp = value.log2().floor();
        let exp = (exp as i32).clamp(Self::MIN_EXP, Self::MAX_EXP);
        (exp - Self::MIN_EXP) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            self.nans += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value.is_infinite() {
            self.infs += 1;
            return;
        }
        self.sum += value;
        if value <= 0.0 {
            self.zeros += 1;
        } else {
            self.buckets[Self::bucket_of(value)] += 1;
        }
    }

    /// Samples recorded (NaNs excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN samples seen (kept out of every other statistic).
    pub fn nan_count(&self) -> u64 {
        self.nans
    }

    /// Zero-or-negative samples seen.
    pub fn zero_count(&self) -> u64 {
        self.zeros
    }

    /// `+inf` samples seen.
    pub fn inf_count(&self) -> u64 {
        self.infs
    }

    /// Approximate quantile `q` in `[0, 1]`. Returns 0 for an empty
    /// histogram. Zeros sort below every bucket; `+inf` above.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if rank <= seen {
                let exp = Self::MIN_EXP + i as i32;
                // Geometric midpoint of [2^exp, 2^(exp+1)).
                return 2f64.powi(exp) * std::f64::consts::SQRT_2;
            }
        }
        f64::INFINITY
    }

    /// Mean of the finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let finite = self.count - self.infs;
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }

    /// Point-in-time summary (count, min/max/mean, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            zeros: self.zeros,
            infs: self.infs,
            nans: self.nans,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Frozen histogram statistics, as exported in `telemetry.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded (NaNs excluded).
    pub count: u64,
    /// Zero-or-negative samples.
    pub zeros: u64,
    /// `+inf` samples.
    pub infs: u64,
    /// NaN samples.
    pub nans: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean of finite samples.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of counters, gauges, and histograms.
///
/// The global telemetry registry is an instance of this; standalone
/// instances serve always-on accounting that must work with telemetry
/// disabled (e.g. the pipeline resilience summary, which the CLI and
/// `telemetry.json` both read so they cannot disagree).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<MetricsState>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (created at 0 on first use).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut s = self.state.lock().unwrap();
        *s.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` (last write wins — idempotent under job retry).
    pub fn gauge(&self, name: &str, value: f64) {
        let mut s = self.state.lock().unwrap();
        s.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut s = self.state.lock().unwrap();
        s.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Reads a counter (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.state.lock().unwrap().counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.state.lock().unwrap().gauges.get(name).copied()
    }

    /// Clears every metric.
    pub fn clear(&self) {
        *self.state.lock().unwrap() = MetricsState::default();
    }

    /// Clones the current values, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.state.lock().unwrap();
        MetricsSnapshot {
            counters: s.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: s.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// Frozen, name-sorted copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` histograms.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders as a JSON object `{counters, gauges, histograms}`.
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v)))
                .collect(),
        );
        let hists = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("count".into(), Value::Number(h.count as f64)),
                            ("zeros".into(), Value::Number(h.zeros as f64)),
                            ("infs".into(), Value::Number(h.infs as f64)),
                            ("nans".into(), Value::Number(h.nans as f64)),
                            ("min".into(), Value::Number(h.min)),
                            ("max".into(), Value::Number(h.max)),
                            ("mean".into(), Value::Number(h.mean)),
                            ("p50".into(), Value::Number(h.p50)),
                            ("p95".into(), Value::Number(h.p95)),
                            ("p99".into(), Value::Number(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), hists),
        ])
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// Everything collected so far, cloned out of the global collector.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Finished wall-clock spans.
    pub spans: Vec<SpanRecord>,
    /// Simulated-clock slices.
    pub slices: Vec<SimSlice>,
    /// Global metrics.
    pub metrics: MetricsSnapshot,
}

impl TelemetrySnapshot {
    /// Total simulated seconds per track, summed across every process,
    /// sorted by track name. This is the exporters' view of
    /// `Device::phase_totals()` — the two must agree exactly.
    pub fn phase_totals(&self) -> Vec<(String, f64)> {
        let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
        for s in &self.slices {
            *totals.entry(s.track.as_str()).or_insert(0.0) += s.sim_dur_s;
        }
        totals.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }
}

/// Clones the collected state (works whether or not collection is
/// currently enabled).
pub fn snapshot() -> TelemetrySnapshot {
    let c = collector();
    TelemetrySnapshot {
        spans: c.spans.lock().unwrap().clone(),
        slices: c.slices.lock().unwrap().clone(),
        metrics: c.metrics.snapshot(),
    }
}

/// Options for [`chrome_trace`].
#[derive(Debug, Clone, Copy)]
pub struct ChromeTraceOptions {
    /// Include the wall-clock host process (every [`span`]). Wall times
    /// are nondeterministic, so golden tests set this to `false` and pin
    /// only the simulated processes.
    pub include_host: bool,
}

impl Default for ChromeTraceOptions {
    fn default() -> Self {
        Self { include_host: true }
    }
}

/// Renders a snapshot as Chrome trace-event JSON (the "JSON Array
/// Format" Perfetto and `chrome://tracing` load directly).
///
/// Layout: one process per simulated device/node, one thread ("track")
/// per phase within it; sim timestamps are microseconds on that device's
/// clock. The host process (when included) carries every wall-clock span
/// on one track per recording thread... collapsed to a single track here
/// because span nesting already encodes concurrency structure.
/// Event order is deterministic: metadata first, then complete events
/// sorted by `(pid, tid, ts, dur, name)`.
pub fn chrome_trace(snap: &TelemetrySnapshot, opts: ChromeTraceOptions) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Deterministic pid assignment: sorted process names.
    let mut processes: Vec<&str> = snap.slices.iter().map(|s| s.process.as_str()).collect();
    processes.sort_unstable();
    processes.dedup();
    let pid_of = |p: &str| processes.iter().position(|&x| x == p).unwrap() as f64 + 1.0;

    // Deterministic tid assignment per process: sorted track names.
    let mut tracks: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for s in &snap.slices {
        let t = tracks.entry(s.process.as_str()).or_default();
        if !t.contains(&s.track.as_str()) {
            t.push(s.track.as_str());
        }
    }
    for t in tracks.values_mut() {
        t.sort_unstable();
    }

    for &p in &processes {
        events.push(meta_event("process_name", pid_of(p), None, p));
        for (i, &tr) in tracks[p].iter().enumerate() {
            events.push(meta_event("thread_name", pid_of(p), Some(i as f64 + 1.0), tr));
        }
    }

    let mut complete: Vec<(f64, f64, f64, f64, Value)> = Vec::new();
    for s in &snap.slices {
        let pid = pid_of(&s.process);
        let tid = tracks[s.process.as_str()]
            .iter()
            .position(|&t| t == s.track)
            .unwrap() as f64
            + 1.0;
        let ts = s.sim_start_s * 1e6;
        let dur = s.sim_dur_s * 1e6;
        complete.push((
            pid,
            tid,
            ts,
            dur,
            complete_event(&s.name, "sim", pid, tid, ts, dur, &[]),
        ));
    }

    if opts.include_host && !snap.spans.is_empty() {
        let host_pid = processes.len() as f64 + 1.0;
        events.push(meta_event("process_name", host_pid, None, "host"));
        events.push(meta_event("thread_name", host_pid, Some(1.0), "spans"));
        for sp in &snap.spans {
            let mut attrs = sp.attrs.clone();
            if sp.parent != 0 {
                attrs.push(("parent".into(), sp.parent.to_string()));
            }
            attrs.push(("span_id".into(), sp.id.to_string()));
            complete.push((
                host_pid,
                1.0,
                sp.wall_start_us,
                sp.wall_dur_us,
                complete_event(
                    &sp.name,
                    "wall",
                    host_pid,
                    1.0,
                    sp.wall_start_us,
                    sp.wall_dur_us,
                    &attrs,
                ),
            ));
        }
    }

    complete.sort_by(|a, b| {
        (a.0, a.1, a.2, a.3)
            .partial_cmp(&(b.0, b.1, b.2, b.3))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    events.extend(complete.into_iter().map(|(_, _, _, _, e)| e));
    Value::Array(events)
}

fn meta_event(kind: &str, pid: f64, tid: Option<f64>, name: &str) -> Value {
    let mut fields = vec![
        ("ph".into(), Value::String("M".into())),
        ("name".into(), Value::String(kind.into())),
        ("pid".into(), Value::Number(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Value::Number(tid)));
    }
    fields.push((
        "args".into(),
        Value::Object(vec![("name".into(), Value::String(name.into()))]),
    ));
    Value::Object(fields)
}

fn complete_event(
    name: &str,
    cat: &str,
    pid: f64,
    tid: f64,
    ts: f64,
    dur: f64,
    attrs: &[(String, String)],
) -> Value {
    let mut fields = vec![
        ("ph".into(), Value::String("X".into())),
        ("name".into(), Value::String(name.into())),
        ("cat".into(), Value::String(cat.into())),
        ("pid".into(), Value::Number(pid)),
        ("tid".into(), Value::Number(tid)),
        ("ts".into(), Value::Number(ts)),
        ("dur".into(), Value::Number(dur)),
    ];
    if !attrs.is_empty() {
        fields.push((
            "args".into(),
            Value::Object(
                attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                    .collect(),
            ),
        ));
    }
    Value::Object(fields)
}

// ---------------------------------------------------------------------------
// Windowed time-series (ring-buffer windows over the simulated clock)
// ---------------------------------------------------------------------------

/// One fixed-width window of a [`WindowSeries`]: counters, last-write
/// gauges, and histograms scoped to `[index * width_s, (index+1) * width_s)`
/// on the simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SeriesWindow {
    /// Window index (`floor(t / width_s)`).
    pub index: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl SeriesWindow {
    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Borrows a histogram, if any sample landed in this window.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing was recorded in the window.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Fixed-width ring-buffer windows over the simulated clock.
///
/// A window materializes the first time a sample lands in it, so an idle
/// clock produces index gaps, not empty windows — readers that need
/// per-window semantics (the SLO engine) must treat a missing index as
/// "no data". The ring retains the `retention` highest-index windows
/// ever touched; older windows are evicted lowest-index-first, and
/// samples that arrive for an already-evicted window are counted in
/// `dropped` rather than resurrecting it. Everything is plain data on
/// the simulated clock, so same-seed runs produce byte-identical
/// snapshots.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    width_s: f64,
    retention: usize,
    /// Ascending by window index; at most `retention` entries.
    windows: Vec<SeriesWindow>,
    dropped: u64,
}

impl WindowSeries {
    /// A series of `retention` windows of `width_s` seconds each.
    /// `width_s` must be positive and finite; `retention >= 1`.
    pub fn new(width_s: f64, retention: usize) -> Self {
        assert!(width_s > 0.0 && width_s.is_finite(), "window width must be positive");
        assert!(retention >= 1, "retention must be >= 1");
        Self { width_s, retention, windows: Vec::new(), dropped: 0 }
    }

    /// The window width, seconds.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Max windows retained.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Samples that arrived for an already-evicted window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The window index covering simulated time `t_s` (clamped at 0).
    pub fn window_index(&self, t_s: f64) -> u64 {
        (t_s.max(0.0) / self.width_s).floor() as u64
    }

    /// Retained windows, ascending by index.
    pub fn windows(&self) -> &[SeriesWindow] {
        &self.windows
    }

    /// The retained window at `index`, if it materialized and survived.
    pub fn window_at(&self, index: u64) -> Option<&SeriesWindow> {
        self.windows.iter().find(|w| w.index == index)
    }

    /// Highest window index ever touched (None before the first sample).
    pub fn newest_index(&self) -> Option<u64> {
        self.windows.last().map(|w| w.index)
    }

    fn window_mut(&mut self, t_s: f64) -> Option<&mut SeriesWindow> {
        let index = self.window_index(t_s);
        let pos = match self.windows.binary_search_by_key(&index, |w| w.index) {
            Ok(pos) => pos,
            Err(pos) => {
                self.windows.insert(pos, SeriesWindow { index, ..SeriesWindow::default() });
                // Evict lowest-index windows first until the ring fits.
                // A sample for an already-evicted index lands below every
                // retained window and is itself the next victim: counted
                // in `dropped`, never resurrected.
                while self.windows.len() > self.retention {
                    self.windows.remove(0);
                }
                match self.windows.binary_search_by_key(&index, |w| w.index) {
                    Ok(p) => p,
                    Err(_) => {
                        self.dropped += 1;
                        return None;
                    }
                }
            }
        };
        Some(&mut self.windows[pos])
    }

    /// Adds `delta` to counter `name` in the window covering `t_s`.
    pub fn incr(&mut self, t_s: f64, name: &str, delta: u64) {
        if let Some(w) = self.window_mut(t_s) {
            *w.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets gauge `name` in the window covering `t_s` (last write wins).
    pub fn gauge(&mut self, t_s: f64, name: &str, value: f64) {
        if let Some(w) = self.window_mut(t_s) {
            w.gauges.insert(name.to_string(), value);
        }
    }

    /// Records a histogram sample into the window covering `t_s`.
    pub fn observe(&mut self, t_s: f64, name: &str, value: f64) {
        if let Some(w) = self.window_mut(t_s) {
            w.histograms.entry(name.to_string()).or_default().observe(value);
        }
    }

    /// Renders the series as a deterministic JSON object (the
    /// `telemetry.json` `series` key): window metadata plus per-window
    /// counters, gauges, and histogram summaries, all name-sorted.
    pub fn to_value(&self) -> Value {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                let counters = Value::Object(
                    w.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                        .collect(),
                );
                let gauges = Value::Object(
                    w.gauges.iter().map(|(k, v)| (k.clone(), Value::Number(*v))).collect(),
                );
                let hists = Value::Object(
                    w.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_summary_value(&h.summary())))
                        .collect(),
                );
                Value::Object(vec![
                    ("index".into(), Value::Number(w.index as f64)),
                    ("start_s".into(), Value::Number(w.index as f64 * self.width_s)),
                    ("counters".into(), counters),
                    ("gauges".into(), gauges),
                    ("histograms".into(), hists),
                ])
            })
            .collect();
        Value::Object(vec![
            ("width_s".into(), Value::Number(self.width_s)),
            ("retention".into(), Value::Number(self.retention as f64)),
            ("dropped".into(), Value::Number(self.dropped as f64)),
            ("windows".into(), Value::Array(windows)),
        ])
    }
}

fn hist_summary_value(h: &HistogramSummary) -> Value {
    Value::Object(vec![
        ("count".into(), Value::Number(h.count as f64)),
        ("min".into(), Value::Number(h.min)),
        ("max".into(), Value::Number(h.max)),
        ("mean".into(), Value::Number(h.mean)),
        ("p50".into(), Value::Number(h.p50)),
        ("p95".into(), Value::Number(h.p95)),
        ("p99".into(), Value::Number(h.p99)),
    ])
}

// ---------------------------------------------------------------------------
// Flow events (request causality across trace processes)
// ---------------------------------------------------------------------------

/// Builds a Chrome flow-start event (`ph: "s"`): the outgoing edge of a
/// causal link, anchored at (`pid`, `tid`, `ts_us`). `flow_id` pairs it
/// with its [`flow_finish_event`]; `span_id` names the span the edge
/// leaves, and `trace-check` rejects flows whose `span` attribute does
/// not match any exported span id.
pub fn flow_start_event(flow_id: u64, pid: f64, tid: f64, ts_us: f64, name: &str, span_id: u64) -> Value {
    flow_event("s", flow_id, pid, tid, ts_us, name, span_id)
}

/// Builds a Chrome flow-finish event (`ph: "f"`, `bp: "e"`): the
/// incoming edge of the causal link opened by [`flow_start_event`] with
/// the same `flow_id`.
pub fn flow_finish_event(flow_id: u64, pid: f64, tid: f64, ts_us: f64, name: &str, span_id: u64) -> Value {
    flow_event("f", flow_id, pid, tid, ts_us, name, span_id)
}

fn flow_event(ph: &str, flow_id: u64, pid: f64, tid: f64, ts_us: f64, name: &str, span_id: u64) -> Value {
    let mut fields = vec![
        ("ph".into(), Value::String(ph.into())),
        ("id".into(), Value::Number(flow_id as f64)),
        ("name".into(), Value::String(name.into())),
        ("cat".into(), Value::String("flow".into())),
        ("pid".into(), Value::Number(pid)),
        ("tid".into(), Value::Number(tid)),
        ("ts".into(), Value::Number(ts_us)),
    ];
    if ph == "f" {
        // Bind to the enclosing slice's end, the convention Perfetto
        // renders as an arrow into the destination slice.
        fields.push(("bp".into(), Value::String("e".into())));
    }
    fields.push((
        "args".into(),
        Value::Object(vec![("span".into(), Value::String(span_id.to_string()))]),
    ));
    Value::Object(fields)
}

// ---------------------------------------------------------------------------
// Span-parentage guard (rayon/crossbeam fan-outs)
// ---------------------------------------------------------------------------

/// Debug assertion that every recorded span named `name` is parented on
/// `parent`. Spans opened with plain [`span`] inside a rayon/crossbeam
/// closure silently re-root (the worker thread has an empty span stack);
/// call this after the fan-out joins to catch that class of bug in debug
/// builds. No-op in release builds or while collection is disabled.
pub fn assert_span_parent(name: &str, parent: SpanId) {
    if !cfg!(debug_assertions) || !is_enabled() {
        return;
    }
    let spans = collector().spans.lock().unwrap();
    // Only spans recorded under *this* parent (ids are allocated in
    // record order, so an earlier fan-out's children — which correctly
    // parent to their own batch — are out of scope).
    for s in spans.iter().filter(|s| s.name == name && s.id > parent.0) {
        debug_assert!(
            s.parent == parent.0,
            "span '{name}' (id {}) re-rooted: parent {} != expected {} — \
             use telemetry::span_with_parent inside parallel closures",
            s.id,
            s.parent,
            parent.0
        );
    }
}

/// Renders the wall-clock spans as collapsed-stack flamegraph text
/// (`root;child;leaf count` per line, count in integer microseconds of
/// *self* time), sorted for determinism. Feed to `inferno-flamegraph` or
/// `flamegraph.pl`.
pub fn flamegraph(snap: &TelemetrySnapshot) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> =
        snap.spans.iter().map(|s| (s.id, s)).collect();
    // Self time = duration minus direct children's duration.
    let mut child_time: BTreeMap<u64, f64> = BTreeMap::new();
    for s in &snap.spans {
        if s.parent != 0 {
            *child_time.entry(s.parent).or_insert(0.0) += s.wall_dur_us;
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for s in &snap.spans {
        let mut stack = vec![s.name.as_str()];
        let mut cur = s.parent;
        let mut hops = 0;
        while cur != 0 && hops < 128 {
            match by_id.get(&cur) {
                Some(p) => {
                    stack.push(p.name.as_str());
                    cur = p.parent;
                }
                None => break, // parent still live at snapshot time
            }
            hops += 1;
        }
        stack.reverse();
        let self_us =
            (s.wall_dur_us - child_time.get(&s.id).copied().unwrap_or(0.0)).max(0.0);
        *lines.entry(stack.join(";")).or_insert(0) += self_us.round() as u64;
    }
    let mut out = String::new();
    for (stack, us) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; tests that enable it must not
    // interleave. Every test below that calls `enable()` holds this lock
    // and calls `reset()` first.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collects_nothing_and_is_inert() {
        let _g = lock();
        reset();
        {
            let mut s = span("ghost");
            s.set_attr("k", "v");
            assert_eq!(s.id(), SpanId::NONE);
        }
        sim_slice("dev", "kernel", "k", 0.0, 1.0);
        counter("c", 3);
        gauge("g", 1.0);
        observe("h", 0.5);
        let (v, secs) = timed("t", || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.slices.is_empty());
        assert!(snap.metrics.is_empty());
        assert_eq!(current_span(), SpanId::NONE);
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let _g = lock();
        reset();
        enable();
        let outer_id;
        {
            let outer = span("outer");
            outer_id = outer.id();
            assert_eq!(current_span(), outer.id());
            {
                let mut inner = span("inner");
                inner.set_attr("k", "v");
                assert_eq!(current_span(), inner.id());
            }
            assert_eq!(current_span(), outer.id());
        }
        let snap = snapshot();
        reset();
        assert_eq!(snap.spans.len(), 2);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id.0);
        assert_eq!(outer.id, outer_id.0);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.attrs, vec![("k".to_string(), "v".to_string())]);
        assert!(outer.wall_dur_us >= inner.wall_dur_us);
    }

    #[test]
    fn explicit_parent_carries_across_threads() {
        let _g = lock();
        reset();
        enable();
        let parent_id;
        {
            let parent = span("sweep");
            parent_id = parent.id();
            let pid = parent.id();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    scope.spawn(move || {
                        let _s = span_with_parent(format!("pair{i}"), pid);
                        let _n = span("nested"); // chains to pair via TLS
                    });
                }
            });
        }
        let snap = snapshot();
        reset();
        let pairs: Vec<_> =
            snap.spans.iter().filter(|s| s.name.starts_with("pair")).collect();
        assert_eq!(pairs.len(), 4);
        assert!(pairs.iter().all(|s| s.parent == parent_id.0));
        let nested: Vec<_> = snap.spans.iter().filter(|s| s.name == "nested").collect();
        assert_eq!(nested.len(), 4);
        for n in nested {
            assert!(pairs.iter().any(|p| p.id == n.parent), "nested under a pair");
        }
    }

    #[test]
    fn histogram_buckets_edge_cases() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-1.0);
        h.observe(f64::MIN_POSITIVE / 4.0); // subnormal
        h.observe(f64::INFINITY);
        h.observe(f64::NAN);
        h.observe(1.0);
        assert_eq!(h.count(), 5, "NaN excluded from count");
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.zero_count(), 2, "zero and negative pool together");
        assert_eq!(h.inf_count(), 1);
        assert_eq!(h.summary().max, f64::INFINITY);
        assert_eq!(h.summary().min, -1.0);
        // Subnormal clamps into the lowest bucket instead of panicking.
        assert!(h.quantile(0.5).is_finite());
        // All-zeros histogram: every quantile is 0.
        let mut z = Histogram::new();
        for _ in 0..10 {
            z.observe(0.0);
        }
        assert_eq!(z.quantile(0.99), 0.0);
        // All-inf histogram: quantiles are inf.
        let mut i = Histogram::new();
        i.observe(f64::INFINITY);
        assert_eq!(i.quantile(0.5), f64::INFINITY);
        // Empty histogram.
        let e = Histogram::new();
        assert_eq!(e.quantile(0.5), 0.0);
        assert_eq!(e.summary().count, 0);
    }

    #[test]
    fn histogram_quantiles_are_log_accurate() {
        let mut h = Histogram::new();
        // 100 samples at ~1e-3, 5 at ~1.0: p50 near 1e-3, p99 near 1.
        for _ in 0..100 {
            h.observe(1.1e-3);
        }
        for _ in 0..5 {
            h.observe(1.3);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(p50 > 0.4e-3 && p50 < 2.5e-3, "p50 {p50}");
        assert!(p99 > 0.5 && p99 < 3.0, "p99 {p99}");
        assert!((h.mean() - (100.0 * 1.1e-3 + 5.0 * 1.3) / 105.0).abs() < 1e-12);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_reads_back() {
        let r = MetricsRegistry::new();
        r.counter("z.last", 2);
        r.counter("a.first", 1);
        r.counter("a.first", 1);
        r.gauge("g", 4.0);
        r.gauge("g", 5.0); // last write wins
        r.observe("h", 2.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.first".into(), 2), ("z.last".into(), 2)]);
        assert_eq!(snap.gauge("g"), Some(5.0));
        assert_eq!(snap.counter("a.first"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histograms[0].1.count, 1);
        let json = snap.to_json().to_json();
        assert!(json.contains("\"a.first\":2"), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_well_formed() {
        let _g = lock();
        reset();
        enable();
        sim_slice("devB", "kernel", "k1", 0.0, 2.0);
        sim_slice("devA", "h2d", "copy", 0.5, 1.0);
        sim_slice("devA", "kernel", "k0", 1.5, 0.25);
        {
            let _s = span("host_work");
        }
        let snap = snapshot();
        reset();
        let sim_only = chrome_trace(&snap, ChromeTraceOptions { include_host: false });
        let text = sim_only.to_json();
        // devA sorts before devB -> pid 1; its tracks sort h2d(1), kernel(2).
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"devA\""));
        assert!(!text.contains("host_work"), "host excluded");
        // Deterministic: same snapshot, same bytes.
        assert_eq!(
            text,
            chrome_trace(&snap, ChromeTraceOptions { include_host: false }).to_json()
        );
        let with_host = chrome_trace(&snap, ChromeTraceOptions::default()).to_json();
        assert!(with_host.contains("host_work"));
        // Parseable and array-shaped.
        let doc = Value::parse(&with_host).unwrap();
        let events = doc.as_array().unwrap();
        assert!(events.len() >= 4);
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap();
            assert!(ph == "M" || ph == "X");
            if ph == "X" {
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
                assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn phase_totals_aggregate_across_processes() {
        let _g = lock();
        reset();
        enable();
        sim_slice("d1", "kernel", "a", 0.0, 1.0);
        sim_slice("d2", "kernel", "b", 0.0, 2.0);
        sim_slice("d1", "h2d", "c", 1.0, 0.5);
        let snap = snapshot();
        reset();
        let totals = snap.phase_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "h2d");
        assert!((totals[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(totals[1].0, "kernel");
        assert!((totals[1].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flamegraph_collapses_stacks_with_self_time() {
        let _g = lock();
        reset();
        enable();
        {
            let _root = span("root");
            {
                let _a = span("a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = span("b");
            }
        }
        let snap = snapshot();
        reset();
        let fg = flamegraph(&snap);
        let lines: Vec<&str> = fg.lines().collect();
        assert_eq!(lines.len(), 3, "{fg}");
        assert!(lines.iter().any(|l| l.starts_with("root ")));
        assert!(lines.iter().any(|l| l.starts_with("root;a ")));
        assert!(lines.iter().any(|l| l.starts_with("root;b ")));
        let a_us: u64 = lines
            .iter()
            .find(|l| l.starts_with("root;a "))
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(a_us >= 1000, "slept 2ms, self time {a_us}us");
    }

    #[test]
    fn timed_records_a_span_when_enabled() {
        let _g = lock();
        reset();
        enable();
        let (v, secs) = timed("work", || 7);
        assert_eq!(v, 7);
        assert!(secs >= 0.0);
        let snap = snapshot();
        reset();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "work");
    }

    // -- windowed series (no global state: no lock needed) ------------------

    #[test]
    fn series_empty_window_never_materializes() {
        // An untouched series has no windows; a touched one materializes
        // only the windows samples actually landed in.
        let mut s = WindowSeries::new(1e-3, 8);
        assert!(s.windows().is_empty());
        assert_eq!(s.newest_index(), None);
        s.incr(5.5e-3, "hits", 1);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.window_at(5).unwrap().counter("hits"), 1);
        assert!(s.window_at(4).is_none(), "idle windows stay gaps");
        // A counter-only window reports no histogram: readers must treat
        // that as "no data", not as an empty distribution.
        assert!(s.window_at(5).unwrap().histogram("lat").is_none());
    }

    #[test]
    fn series_single_sample_window_summary_is_exact() {
        let mut s = WindowSeries::new(1e-3, 8);
        s.observe(2.1e-3, "lat", 0.25);
        let w = s.window_at(2).unwrap();
        let h = w.histogram("lat").unwrap().summary();
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 0.25);
        assert_eq!(h.mean, 0.25);
    }

    #[test]
    fn series_retention_evicts_lowest_index_first() {
        let mut s = WindowSeries::new(1.0, 3);
        for t in 0..5 {
            s.incr(t as f64 + 0.5, "w", 1);
        }
        let idx: Vec<u64> = s.windows().iter().map(|w| w.index).collect();
        assert_eq!(idx, [2, 3, 4], "windows 0 and 1 evicted in order");
        // A late sample for an evicted window is dropped, not resurrected.
        s.incr(0.5, "w", 1);
        let idx: Vec<u64> = s.windows().iter().map(|w| w.index).collect();
        assert_eq!(idx, [2, 3, 4]);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn series_idle_clock_leaves_gaps_not_windows() {
        // A long idle stretch between samples must not burn retention on
        // empty windows: only touched indexes occupy ring slots.
        let mut s = WindowSeries::new(1e-3, 4);
        s.observe(0.5e-3, "lat", 1.0);
        s.observe(1000.5e-3, "lat", 2.0); // ~1000 windows later
        let idx: Vec<u64> = s.windows().iter().map(|w| w.index).collect();
        assert_eq!(idx, [0, 1000], "both survive: gaps don't evict");
        s.observe(2000.5e-3, "lat", 3.0);
        s.observe(3000.5e-3, "lat", 4.0);
        s.observe(4000.5e-3, "lat", 5.0);
        let idx: Vec<u64> = s.windows().iter().map(|w| w.index).collect();
        assert_eq!(idx, [1000, 2000, 3000, 4000], "capacity, not time, evicts");
    }

    #[test]
    fn series_snapshot_is_deterministic_json() {
        let run = || {
            let mut s = WindowSeries::new(1e-3, 8);
            for i in 0..32 {
                let t = i as f64 * 3.7e-4;
                s.observe(t, "lat", 1e-3 + i as f64 * 1e-5);
                s.incr(t, "reqs", 1);
                s.gauge(t, "depth", i as f64);
            }
            s.to_value().to_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"width_s\""));
        assert!(a.contains("\"windows\""));
    }

    #[test]
    fn flow_events_pair_and_reference_spans() {
        let s = flow_start_event(7, 1.0, 2.0, 10.0, "r7", 42);
        let f = flow_finish_event(7, 3.0, 1.0, 20.0, "r7", 43);
        assert_eq!(s.get("ph").unwrap().as_str().unwrap(), "s");
        assert_eq!(f.get("ph").unwrap().as_str().unwrap(), "f");
        assert_eq!(s.get("id").unwrap().as_f64().unwrap(), 7.0);
        assert_eq!(f.get("id").unwrap().as_f64().unwrap(), 7.0);
        assert!(s.get("bp").is_none());
        assert_eq!(f.get("bp").unwrap().as_str().unwrap(), "e");
        let span_of = |v: &Value| {
            v.get("args").unwrap().get("span").unwrap().as_str().unwrap().to_string()
        };
        assert_eq!(span_of(&s), "42");
        assert_eq!(span_of(&f), "43");
    }

    #[test]
    fn assert_span_parent_accepts_explicit_parentage() {
        let _g = lock();
        reset();
        enable();
        let parent = span("batch");
        let pid = parent.id();
        for _ in 0..3 {
            drop(span_with_parent("child", pid));
        }
        assert_span_parent("child", pid); // must not panic
        drop(parent);
        reset();
    }
}
