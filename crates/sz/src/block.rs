//! Per-block prediction + quantization kernel.
//!
//! GPU-SZ (and cuSZ after it) obtains parallelism by cutting the array into
//! independent blocks; each block predicts only from data inside itself, so
//! blocks compress and decompress with no cross-block dependency. The cost
//! is decorrelation at block borders — the paper (Fig. 4a discussion)
//! attributes GPU-SZ's low-bitrate PSNR drop to exactly this, and this
//! implementation reproduces it faithfully: the first plane/row/point of a
//! block is predicted from an implicit zero ghost boundary.

use crate::config::{Dims, PredictorKind};

/// A rectangular tile of the input array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Global origin `(x, y, z)`.
    pub origin: [usize; 3],
    /// Extent per axis (at least 1).
    pub size: [usize; 3],
}

impl Block {
    /// Number of cells in the block.
    pub fn cells(&self) -> usize {
        self.size[0] * self.size[1] * self.size[2]
    }
}

/// Tiles `dims` into blocks.
///
/// 3-D arrays use `bs^3` cubes, 2-D arrays `bs^2` tiles, and 1-D arrays
/// segments of `bs^3` values (so per-block overhead is comparable).
pub fn partition(dims: Dims, bs: usize) -> Vec<Block> {
    let [nx, ny, nz] = dims.extents();
    let (bx, by, bz) = match dims {
        Dims::D1(_) => (bs * bs * bs, 1, 1),
        Dims::D2(..) => (bs, bs, 1),
        Dims::D3(..) => (bs, bs, bs),
    };
    let mut blocks = Vec::new();
    let mut z = 0;
    while z < nz {
        let sz = bz.min(nz - z);
        let mut y = 0;
        while y < ny {
            let sy = by.min(ny - y);
            let mut x = 0;
            while x < nx {
                let sx = bx.min(nx - x);
                blocks.push(Block { origin: [x, y, z], size: [sx, sy, sz] });
                x += bx;
            }
            y += by;
        }
        z += bz;
    }
    blocks
}

/// Which predictor a block ended up using (stored per block in the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorTag {
    /// Lorenzo prediction from reconstructed neighbors.
    Lorenzo,
    /// Linear regression with the stored coefficients.
    Regression,
}

impl PredictorTag {
    /// Stream encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            PredictorTag::Lorenzo => 0,
            PredictorTag::Regression => 1,
        }
    }

    /// Stream decoding.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(PredictorTag::Lorenzo),
            1 => Some(PredictorTag::Regression),
            _ => None,
        }
    }
}

/// Result of compressing one block.
#[derive(Debug, Clone)]
pub struct BlockOutput {
    /// Quantization symbols, one per cell; 0 marks an outlier.
    pub codes: Vec<u32>,
    /// Raw values for cells that did not quantize within bound.
    pub outliers: Vec<f32>,
    /// Predictor actually used.
    pub tag: PredictorTag,
    /// Regression coefficients `[b0, b1, b2, b3]` (zeroed for Lorenzo).
    pub coeffs: [f32; 4],
}

/// Quantizes one value against a prediction.
///
/// Returns `(symbol, reconstructed)`. Symbol 0 flags an outlier whose exact
/// value is stored verbatim — this also captures NaN/Inf losslessly.
#[inline]
pub fn quantize(val: f32, pred: f64, eb: f64, radius: u32) -> (u32, f32) {
    if val.is_finite() {
        let diff = val as f64 - pred;
        let code = (diff / (2.0 * eb)).round();
        if code.abs() < radius as f64 {
            let recon = (pred + code * 2.0 * eb) as f32;
            if recon.is_finite() && (recon as f64 - val as f64).abs() <= eb {
                return ((code as i64 + radius as i64) as u32, recon);
            }
        }
    }
    (0, val)
}

/// Local reconstruction buffer with an implicit zero ghost boundary.
struct Recon<'a> {
    buf: &'a mut [f32],
    sx: usize,
    sxy: usize,
}

impl Recon<'_> {
    #[inline]
    fn get(&self, i: isize, j: isize, k: isize) -> f64 {
        if i < 0 || j < 0 || k < 0 {
            0.0
        } else {
            self.buf[i as usize + self.sx * j as usize + self.sxy * k as usize] as f64
        }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, k: usize, v: f32) {
        self.buf[i + self.sx * j + self.sxy * k] = v;
    }
}

/// First-order Lorenzo prediction at local `(i, j, k)`.
#[inline]
fn lorenzo(r: &Recon<'_>, i: usize, j: usize, k: usize) -> f64 {
    let (i, j, k) = (i as isize, j as isize, k as isize);
    r.get(i - 1, j, k) + r.get(i, j - 1, k) + r.get(i, j, k - 1)
        - r.get(i - 1, j - 1, k)
        - r.get(i - 1, j, k - 1)
        - r.get(i, j - 1, k - 1)
        + r.get(i - 1, j - 1, k - 1)
}

/// Fits `v ~ b0 + b1*i + b2*j + b3*k` by least squares over the block.
///
/// On a full regular grid the coordinates are uncorrelated, so each slope is
/// `cov(coord, v) / var(coord)` independently; non-finite samples are skipped.
fn fit_regression(data: &[f32], ext: [usize; 3], block: &Block) -> [f32; 4] {
    let [sx, sy, sz] = block.size;
    let n = (sx * sy * sz) as f64;
    let (mut sum_v, mut si_v, mut sj_v, mut sk_v) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut finite = 0.0f64;
    for k in 0..sz {
        for j in 0..sy {
            let row = global_index(ext, block, 0, j, k);
            for i in 0..sx {
                let v = data[row + i] as f64;
                if v.is_finite() {
                    finite += 1.0;
                    sum_v += v;
                    si_v += i as f64 * v;
                    sj_v += j as f64 * v;
                    sk_v += k as f64 * v;
                }
            }
        }
    }
    if finite < 1.0 {
        return [0.0; 4];
    }
    // Means of coordinates over the *full* grid (used even when some values
    // are non-finite; the bias this introduces only affects prediction
    // quality, not correctness, since residuals are error-bounded anyway).
    let mi = (sx as f64 - 1.0) / 2.0;
    let mj = (sy as f64 - 1.0) / 2.0;
    let mk = (sz as f64 - 1.0) / 2.0;
    let var = |s: usize| (s as f64 * s as f64 - 1.0) / 12.0;
    let mean_v = sum_v / finite;
    let slope = |s_cv: f64, m: f64, sdim: usize| -> f64 {
        let v = var(sdim);
        if v <= 0.0 {
            0.0
        } else {
            (s_cv / n - m * mean_v * (finite / n)) / v * (n / finite)
        }
    };
    let b1 = slope(si_v, mi, sx);
    let b2 = slope(sj_v, mj, sy);
    let b3 = slope(sk_v, mk, sz);
    let b0 = mean_v - b1 * mi - b2 * mj - b3 * mk;
    [b0 as f32, b1 as f32, b2 as f32, b3 as f32]
}

#[inline]
fn global_index(ext: [usize; 3], block: &Block, i: usize, j: usize, k: usize) -> usize {
    (block.origin[0] + i)
        + ext[0] * ((block.origin[1] + j) + ext[1] * (block.origin[2] + k))
}

/// Estimates which predictor fits the block better by sampling residuals
/// against the *original* data (the standard SZ 2.x heuristic).
fn choose_predictor(data: &[f32], ext: [usize; 3], block: &Block, coeffs: &[f32; 4]) -> PredictorTag {
    let [sx, sy, sz] = block.size;
    let orig = |i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 {
            0.0
        } else {
            let v = data[global_index(ext, block, i as usize, j as usize, k as usize)];
            if v.is_finite() {
                v as f64
            } else {
                0.0
            }
        }
    };
    let mut lorenzo_err = 0.0f64;
    let mut reg_err = 0.0f64;
    let step = 2usize;
    for k in (0..sz).step_by(step) {
        for j in (0..sy).step_by(step) {
            for i in (0..sx).step_by(step) {
                let v = orig(i as isize, j as isize, k as isize);
                let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                let pl = orig(ii - 1, jj, kk) + orig(ii, jj - 1, kk) + orig(ii, jj, kk - 1)
                    - orig(ii - 1, jj - 1, kk)
                    - orig(ii - 1, jj, kk - 1)
                    - orig(ii, jj - 1, kk - 1)
                    + orig(ii - 1, jj - 1, kk - 1);
                let pr = coeffs[0] as f64
                    + coeffs[1] as f64 * i as f64
                    + coeffs[2] as f64 * j as f64
                    + coeffs[3] as f64 * k as f64;
                lorenzo_err += (v - pl).abs();
                reg_err += (v - pr).abs();
            }
        }
    }
    if reg_err < lorenzo_err {
        PredictorTag::Regression
    } else {
        PredictorTag::Lorenzo
    }
}

/// Compresses one block: predicts, quantizes, and collects outliers.
pub fn compress_block(
    data: &[f32],
    ext: [usize; 3],
    block: &Block,
    eb: f64,
    radius: u32,
    predictor: PredictorKind,
) -> BlockOutput {
    let tag = match predictor {
        PredictorKind::Lorenzo => PredictorTag::Lorenzo,
        PredictorKind::Regression => PredictorTag::Regression,
        PredictorKind::Adaptive => {
            let coeffs = fit_regression(data, ext, block);
            choose_predictor(data, ext, block, &coeffs)
        }
    };
    let coeffs = if tag == PredictorTag::Regression {
        fit_regression(data, ext, block)
    } else {
        [0.0; 4]
    };
    let [sx, sy, sz] = block.size;
    let mut codes = Vec::with_capacity(block.cells());
    let mut outliers = Vec::new();
    let mut recon_buf = vec![0.0f32; block.cells()];
    let mut recon = Recon { buf: &mut recon_buf, sx, sxy: sx * sy };
    for k in 0..sz {
        for j in 0..sy {
            let row = global_index(ext, block, 0, j, k);
            for i in 0..sx {
                let val = data[row + i];
                let pred = match tag {
                    PredictorTag::Lorenzo => lorenzo(&recon, i, j, k),
                    PredictorTag::Regression => {
                        coeffs[0] as f64
                            + coeffs[1] as f64 * i as f64
                            + coeffs[2] as f64 * j as f64
                            + coeffs[3] as f64 * k as f64
                    }
                };
                let (sym, rec) = quantize(val, pred, eb, radius);
                if sym == 0 {
                    outliers.push(val);
                }
                codes.push(sym);
                recon.set(i, j, k, rec);
            }
        }
    }
    BlockOutput { codes, outliers, tag, coeffs }
}

/// Decompresses one block into `out` (the full destination array).
///
/// `codes` must hold exactly `block.cells()` symbols and `outliers` one
/// value per zero symbol; both are validated by the caller (stream layer).
#[allow(clippy::too_many_arguments)] // mirrors the codec stage parameters
pub fn decompress_block(
    codes: &[u32],
    outliers: &[f32],
    tag: PredictorTag,
    coeffs: [f32; 4],
    ext: [usize; 3],
    block: &Block,
    eb: f64,
    radius: u32,
    out: &mut [f32],
) {
    let [sx, sy, sz] = block.size;
    debug_assert_eq!(codes.len(), block.cells());
    let mut recon_buf = vec![0.0f32; block.cells()];
    let mut recon = Recon { buf: &mut recon_buf, sx, sxy: sx * sy };
    let mut next_outlier = 0usize;
    let mut c = 0usize;
    for k in 0..sz {
        for j in 0..sy {
            let row = global_index(ext, block, 0, j, k);
            for i in 0..sx {
                let sym = codes[c];
                c += 1;
                let rec = if sym == 0 {
                    let v = outliers.get(next_outlier).copied().unwrap_or(0.0);
                    next_outlier += 1;
                    v
                } else {
                    let pred = match tag {
                        PredictorTag::Lorenzo => lorenzo(&recon, i, j, k),
                        PredictorTag::Regression => {
                            coeffs[0] as f64
                                + coeffs[1] as f64 * i as f64
                                + coeffs[2] as f64 * j as f64
                                + coeffs[3] as f64 * k as f64
                        }
                    };
                    (pred + (sym as i64 - radius as i64) as f64 * 2.0 * eb) as f32
                };
                recon.set(i, j, k, rec);
                out[row + i] = rec;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_block(data: &[f32], ext: [usize; 3], block: Block, eb: f64, pred: PredictorKind) {
        let out = compress_block(data, ext, &block, eb, 32768, pred);
        let mut recon = vec![0.0f32; data.len()];
        decompress_block(
            &out.codes, &out.outliers, out.tag, out.coeffs, ext, &block, eb, 32768, &mut recon,
        );
        let [sx, sy, sz] = block.size;
        for k in 0..sz {
            for j in 0..sy {
                for i in 0..sx {
                    let gi = global_index(ext, &block, i, j, k);
                    let (a, b) = (data[gi], recon[gi]);
                    if a.is_finite() {
                        assert!(
                            (a as f64 - b as f64).abs() <= eb,
                            "({i},{j},{k}): {a} vs {b} eb={eb}"
                        );
                    } else {
                        assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()));
                    }
                }
            }
        }
    }

    #[test]
    fn partition_covers_domain() {
        for dims in [Dims::D3(65, 32, 17), Dims::D2(100, 7), Dims::D1(100_000)] {
            let blocks = partition(dims, 16);
            let total: usize = blocks.iter().map(|b| b.cells()).sum();
            assert_eq!(total, dims.len());
            // No overlaps: mark cells.
            let [nx, ny, _] = dims.extents();
            let mut seen = vec![false; dims.len()];
            for b in &blocks {
                for k in 0..b.size[2] {
                    for j in 0..b.size[1] {
                        for i in 0..b.size[0] {
                            let gi = (b.origin[0] + i)
                                + nx * ((b.origin[1] + j) + ny * (b.origin[2] + k));
                            assert!(!seen[gi], "cell {gi} covered twice");
                            seen[gi] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn smooth_block_roundtrips_within_bound() {
        let ext = [16, 16, 16];
        let data: Vec<f32> = (0..16 * 16 * 16)
            .map(|i| {
                let x = (i % 16) as f32;
                let y = ((i / 16) % 16) as f32;
                let z = (i / 256) as f32;
                (x * 0.3 + y * 0.1).sin() * 10.0 + z
            })
            .collect();
        let block = Block { origin: [0, 0, 0], size: [16, 16, 16] };
        for pred in [PredictorKind::Lorenzo, PredictorKind::Regression, PredictorKind::Adaptive] {
            roundtrip_block(&data, ext, block, 0.01, pred);
        }
    }

    #[test]
    fn partial_edge_block() {
        let ext = [10, 6, 3];
        let data: Vec<f32> = (0..180).map(|i| (i as f32 * 0.7).cos() * 100.0).collect();
        let block = Block { origin: [8, 4, 0], size: [2, 2, 3] };
        roundtrip_block(&data, ext, block, 0.5, PredictorKind::Adaptive);
    }

    #[test]
    fn non_finite_values_stored_exactly() {
        let ext = [8, 1, 1];
        let data = vec![1.0f32, f32::NAN, f32::INFINITY, -3.0, f32::NEG_INFINITY, 0.0, 2.0, 1.5];
        let block = Block { origin: [0, 0, 0], size: [8, 1, 1] };
        roundtrip_block(&data, ext, block, 0.1, PredictorKind::Lorenzo);
    }

    #[test]
    fn huge_jumps_become_outliers() {
        let ext = [4, 1, 1];
        let data = vec![0.0f32, 1e30, -1e30, 0.0];
        let block = Block { origin: [0, 0, 0], size: [4, 1, 1] };
        let out = compress_block(&data, ext, &block, 1e-6, 32768, PredictorKind::Lorenzo);
        assert!(out.outliers.len() >= 2);
        roundtrip_block(&data, ext, block, 1e-6, PredictorKind::Lorenzo);
    }

    #[test]
    fn regression_beats_lorenzo_on_linear_ramp_with_noise() {
        // A steep plane: Lorenzo's zero ghost boundary hurts the first
        // plane; regression models it exactly.
        let ext = [16, 16, 1];
        let data: Vec<f32> = (0..256)
            .map(|i| {
                let x = (i % 16) as f32;
                let y = (i / 16) as f32;
                1000.0 + 50.0 * x - 20.0 * y
            })
            .collect();
        let block = Block { origin: [0, 0, 0], size: [16, 16, 1] };
        let out = compress_block(&data, ext, &block, 0.01, 32768, PredictorKind::Adaptive);
        assert_eq!(out.tag, PredictorTag::Regression);
        roundtrip_block(&data, ext, block, 0.01, PredictorKind::Adaptive);
    }

    #[test]
    fn quantize_respects_bound() {
        for &(val, pred, eb) in
            &[(1.0f32, 0.9f64, 0.01f64), (-5.0, 5.0, 0.5), (1e20, 0.0, 1.0), (0.0, 0.0, 1e-9)]
        {
            let (sym, rec) = quantize(val, pred, eb, 32768);
            if sym != 0 {
                assert!((rec as f64 - val as f64).abs() <= eb);
            } else {
                assert_eq!(rec, val);
            }
        }
    }
}
