//! Temporal (adjacent-snapshot) compression.
//!
//! The paper's related work (Li et al. 2018, cited as reference 41) observes that
//! cosmological data has low smoothness in *space* but high coherence in
//! *time*, and proposes compressing against the previous snapshot. This
//! module implements that extension on top of the spatial codec: the
//! residual `current - previous_reconstruction` is compressed with the
//! ordinary ABS pipeline, so the error bound carries over unchanged, and
//! the decoder only needs the previous reconstruction it already has.
//!
//! Predicting from the previous *reconstruction* (not the previous
//! original) keeps encoder and decoder in lockstep across arbitrarily
//! long snapshot chains without error accumulation beyond the per-step
//! bound.

use crate::config::{Dims, ErrorBound, SzConfig};
use crate::stream;
use foresight_util::{ByteReader, Error, Result};

/// Compresses `current` against `prev_recon` (element-wise residuals).
///
/// Only ABS mode is supported — relative modes are ill-defined on
/// residuals. The produced stream is a normal SZ stream of the residual
/// field plus a small temporal header.
pub fn compress_temporal(
    current: &[f32],
    prev_recon: &[f32],
    dims: Dims,
    cfg: &SzConfig,
) -> Result<Vec<u8>> {
    if current.len() != prev_recon.len() {
        return Err(Error::invalid("snapshot lengths differ"));
    }
    let ErrorBound::Abs(_) = cfg.mode else {
        return Err(Error::invalid("temporal compression requires ABS mode"));
    };
    let residual: Vec<f32> = current
        .iter()
        .zip(prev_recon)
        .map(|(&c, &p)| if c.is_finite() && p.is_finite() { c - p } else { c })
        .collect();
    // Track which positions bypassed the delta (non-finite inputs).
    let mut bypass = vec![0u8; current.len().div_ceil(8)];
    for (i, (&c, &p)) in current.iter().zip(prev_recon).enumerate() {
        if !(c.is_finite() && p.is_finite()) {
            bypass[i / 8] |= 1 << (i % 8);
        }
    }
    let inner = stream::compress(&residual, dims, cfg)?;
    let mut out = Vec::with_capacity(inner.len() + bypass.len() + 16); // lint: allow(alloc-arith) in-memory buffers, bounded
    out.extend_from_slice(b"SZTD");
    out.extend_from_slice(&(current.len() as u64).to_le_bytes());
    out.extend_from_slice(&bypass);
    out.extend_from_slice(&inner);
    Ok(out)
}

/// Decompresses a temporal stream given the previous reconstruction.
pub fn decompress_temporal(stream_bytes: &[u8], prev_recon: &[f32]) -> Result<(Vec<f32>, Dims)> {
    let mut rd = ByteReader::new(stream_bytes);
    rd.expect_magic(b"SZTD", "temporal SZ stream")?;
    let n64 = rd.u64_le()?;
    if n64 != prev_recon.len() as u64 {
        return Err(Error::invalid(format!(
            "previous snapshot has {} values, stream expects {n64}",
            prev_recon.len()
        )));
    }
    let n = prev_recon.len();
    let bypass = rd.take(n.div_ceil(8))?;
    let rem = rd.remaining();
    let (residual, dims) = stream::decompress(rd.take(rem)?)?;
    if residual.len() != n {
        return Err(Error::corrupt("temporal residual length mismatch"));
    }
    let out = residual
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            if bypass[i / 8] & (1 << (i % 8)) != 0 {
                r // stored verbatim (non-finite chain)
            } else {
                prev_recon[i] + r
            }
        })
        .collect();
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(t: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.01;
                ((x + 0.05 * t).sin() * 100.0 + (x * 3.0).cos() * 20.0) as f32
            })
            .collect()
    }

    #[test]
    fn roundtrip_respects_bound() {
        let n = 4096;
        let prev = snapshot(0.0, n);
        let cur = snapshot(1.0, n);
        let cfg = SzConfig::abs(0.01);
        // Decoder only ever sees reconstructions; emulate that chain.
        let prev_stream = stream::compress(&prev, Dims::D1(n), &cfg).unwrap();
        let (prev_recon, _) = stream::decompress(&prev_stream).unwrap();
        let ts = compress_temporal(&cur, &prev_recon, Dims::D1(n), &cfg).unwrap();
        let (cur_recon, dims) = decompress_temporal(&ts, &prev_recon).unwrap();
        assert_eq!(dims, Dims::D1(n));
        for (a, b) in cur.iter().zip(&cur_recon) {
            assert!((a - b).abs() <= 0.01 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn temporal_beats_spatial_on_slowly_varying_data() {
        // Li et al.'s observation: consecutive snapshots are closer to
        // each other than to any spatial predictor.
        let n = 16384;
        let prev = snapshot(0.0, n);
        // Small time step: the frame barely changes.
        let cur = snapshot(0.05, n);
        let cfg = SzConfig::abs(0.01);
        let spatial = stream::compress(&cur, Dims::D1(n), &cfg).unwrap();
        let prev_stream = stream::compress(&prev, Dims::D1(n), &cfg).unwrap();
        let (prev_recon, _) = stream::decompress(&prev_stream).unwrap();
        let temporal = compress_temporal(&cur, &prev_recon, Dims::D1(n), &cfg).unwrap();
        assert!(
            temporal.len() < spatial.len(),
            "temporal {} should beat spatial {}",
            temporal.len(),
            spatial.len()
        );
    }

    #[test]
    fn chains_do_not_accumulate_error() {
        let n = 2048;
        let cfg = SzConfig::abs(0.05);
        let mut prev_recon = {
            let s0 = snapshot(0.0, n);
            let st = stream::compress(&s0, Dims::D1(n), &cfg).unwrap();
            stream::decompress(&st).unwrap().0
        };
        for step in 1..=10 {
            let cur = snapshot(step as f64 * 0.2, n);
            let ts = compress_temporal(&cur, &prev_recon, Dims::D1(n), &cfg).unwrap();
            let (rec, _) = decompress_temporal(&ts, &prev_recon).unwrap();
            for (a, b) in cur.iter().zip(&rec) {
                assert!((a - b).abs() <= 0.05 + 1e-5, "step {step}: {a} vs {b}");
            }
            prev_recon = rec;
        }
    }

    #[test]
    fn non_finite_values_survive() {
        let n = 64;
        let prev_recon = vec![1.0f32; n];
        let mut cur = vec![2.0f32; n];
        cur[3] = f32::NAN;
        cur[7] = f32::INFINITY;
        let cfg = SzConfig::abs(0.01);
        let ts = compress_temporal(&cur, &prev_recon, Dims::D1(n), &cfg).unwrap();
        let (rec, _) = decompress_temporal(&ts, &prev_recon).unwrap();
        assert!(rec[3].is_nan());
        assert_eq!(rec[7], f32::INFINITY);
    }

    #[test]
    fn mode_and_shape_validation() {
        let a = vec![0.0f32; 10];
        assert!(compress_temporal(&a, &a[..5], Dims::D1(10), &SzConfig::abs(0.1)).is_err());
        assert!(compress_temporal(&a, &a, Dims::D1(10), &SzConfig::rel(0.1)).is_err());
        let ts = compress_temporal(&a, &a, Dims::D1(10), &SzConfig::abs(0.1)).unwrap();
        assert!(decompress_temporal(&ts, &a[..5]).is_err());
        assert!(decompress_temporal(b"nope", &a).is_err());
    }
}
