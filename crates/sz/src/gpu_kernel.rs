//! Dual-quantization: the fully parallel prediction scheme of the
//! *shipping* GPU SZ (cuSZ, Tian et al. 2020).
//!
//! The classic SZ loop predicts from *reconstructed* neighbors, which
//! serializes every block. cuSZ removes the dependency with two
//! quantizations:
//!
//! 1. **Prequantization** — every value is independently quantized to an
//!    integer lattice: `q_i = round(v_i / (2 eb))`. Reconstruction is
//!    `v'_i = 2 eb q_i`, so `|v'_i - v_i| <= eb` holds *before* any
//!    prediction happens.
//! 2. **Postquantization** — the Lorenzo predictor runs on the integer
//!    lattice itself: `d_i = q_i - L(q_neighbors)`. Because `q` is known
//!    up front (it does not depend on reconstruction), every `d_i` is
//!    computable in parallel — this is exactly the data-parallelism the
//!    GPU kernel needs.
//!
//! The decoder inverts the Lorenzo sum per block (a prefix-sum-like
//! recurrence, parallel across blocks) and multiplies back. Entropy stage
//! and container reuse the crate's Huffman/stream machinery.

use crate::block::{self, Block};
use crate::config::Dims;
use crate::huffman::Codebook;
use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::crc::crc32;
use foresight_util::{ByteReader, Error, Result};
use rayon::prelude::*;

const MAGIC: &[u8; 4] = b"SZDQ";
/// Quantization-code radius (codes span the open interval around it).
const RADIUS: i64 = 1 << 15;
/// Largest per-axis extent accepted from a header (2^40 values).
const MAX_EXTENT: u64 = 1 << 40;

/// Per-block dual-quant compression output.
pub(crate) struct DqBlock {
    pub codes: Vec<u32>,
    pub outliers: Vec<f32>, // raw values stored verbatim (exact recovery)
}

/// Largest lattice magnitude kept on the fast path; beyond it the f64
/// rounding of `v / 2eb` can no longer guarantee the bound, so the value
/// goes out as a verbatim outlier.
const Q_MAX: f64 = (1u64 << 50) as f64;

/// Prequantizes one value; `None` routes it to the outlier path.
///
/// Besides range checks, the `f32` rounding of the reconstruction is
/// verified — the lattice point `2 eb q` is an `f64`, and the final cast
/// can push a borderline value past the bound.
#[inline]
fn prequant(v: f32, eb: f64) -> Option<i64> {
    if !v.is_finite() {
        return None;
    }
    let q = (v as f64 / (2.0 * eb)).round();
    if q.abs() > Q_MAX {
        return None;
    }
    let recon = (q * 2.0 * eb) as f32;
    if recon.is_finite() && (recon as f64 - v as f64).abs() <= eb {
        Some(q as i64)
    } else {
        None
    }
}

/// The lattice value both encoder and decoder use at an outlier position
/// (deterministic on both sides; only used to predict neighbors).
#[inline]
fn outlier_lattice(v: f32, eb: f64) -> i64 {
    prequant(v, eb).unwrap_or(0)
}

/// Lorenzo predictor over the integer lattice with a zero ghost boundary.
#[inline]
fn lorenzo_q(q: &[i64], sx: usize, sxy: usize, i: usize, j: usize, k: usize) -> i64 {
    let at = |di: usize, dj: usize, dk: usize| -> i64 {
        if i < di || j < dj || k < dk {
            0
        } else {
            q[(i - di) + sx * (j - dj) + sxy * (k - dk)]
        }
    };
    at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) - at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1)
        + at(1, 1, 1)
}

pub(crate) fn compress_block_dq(data: &[f32], ext: [usize; 3], b: &Block, eb: f64) -> DqBlock {
    let [sx, sy, sz] = b.size;
    let cells = b.cells();
    // Prequantization (independent per value — the parallel step).
    let mut q = vec![0i64; cells];
    let mut fast = vec![true; cells];
    let mut raw = vec![0.0f32; cells];
    let mut local = 0;
    for k in 0..sz {
        for j in 0..sy {
            let row = (b.origin[0])
                + ext[0] * ((b.origin[1] + j) + ext[1] * (b.origin[2] + k));
            for i in 0..sx {
                let v = data[row + i];
                raw[local] = v;
                match prequant(v, eb) {
                    Some(qv) => q[local] = qv,
                    None => {
                        q[local] = outlier_lattice(v, eb);
                        fast[local] = false;
                    }
                }
                local += 1;
            }
        }
    }
    // Postquantization: Lorenzo deltas on the lattice.
    let mut codes = Vec::with_capacity(cells);
    let mut outliers = Vec::new();
    let sxy = sx * sy;
    let mut idx = 0;
    for k in 0..sz {
        for j in 0..sy {
            for i in 0..sx {
                if !fast[idx] {
                    codes.push(0);
                    outliers.push(raw[idx]);
                    idx += 1;
                    continue;
                }
                let pred = lorenzo_q(&q, sx, sxy, i, j, k);
                let d = q[idx] - pred;
                if d.abs() < RADIUS {
                    codes.push((d + RADIUS) as u32);
                } else {
                    codes.push(0);
                    outliers.push(raw[idx]);
                }
                idx += 1;
            }
        }
    }
    DqBlock { codes, outliers }
}

pub(crate) fn decompress_block_dq(
    codes: &[u32],
    outliers: &[f32],
    b: &Block,
    eb: f64,
    ext: [usize; 3],
    out: &mut [f32],
) {
    let [sx, sy, sz] = b.size;
    let sxy = sx * sy;
    let mut q = vec![0i64; b.cells()];
    let mut verbatim: Vec<Option<f32>> = vec![None; b.cells()];
    let mut next_outlier = 0;
    let mut idx = 0;
    for k in 0..sz {
        for j in 0..sy {
            for i in 0..sx {
                let sym = codes[idx];
                if sym == 0 {
                    let v = outliers.get(next_outlier).copied().unwrap_or(0.0);
                    next_outlier += 1;
                    verbatim[idx] = Some(v);
                    // Deterministic lattice value for neighbor prediction,
                    // identical to the encoder's choice.
                    q[idx] = outlier_lattice(v, eb);
                } else {
                    q[idx] = lorenzo_q(&q, sx, sxy, i, j, k) + (sym as i64 - RADIUS);
                }
                idx += 1;
            }
        }
    }
    idx = 0;
    for k in 0..sz {
        for j in 0..sy {
            let row =
                (b.origin[0]) + ext[0] * ((b.origin[1] + j) + ext[1] * (b.origin[2] + k));
            for i in 0..sx {
                out[row + i] = match verbatim[idx] {
                    Some(v) => v,
                    None => (q[idx] as f64 * 2.0 * eb) as f32,
                };
                idx += 1;
            }
        }
    }
}

/// Compresses with cuSZ-style dual quantization (ABS bound only).
pub fn compress_dualquant(
    data: &[f32],
    dims: Dims,
    eb: f64,
    block_size: usize,
) -> Result<Vec<u8>> {
    if !(eb.is_finite() && eb > 0.0) {
        return Err(Error::invalid("error bound must be positive"));
    }
    if data.len() != dims.len() {
        return Err(Error::invalid("data length does not match dims"));
    }
    let ext = dims.extents();
    let blocks = block::partition(dims, block_size.max(2));
    let outputs: Vec<DqBlock> =
        blocks.par_iter().map(|b| compress_block_dq(data, ext, b, eb)).collect();

    // Global Huffman over all codes: parallel fold/reduce into dense
    // per-chunk tables (codes live in [0, 2*RADIUS); 0 = outlier).
    let hist = {
        let dense_len = 2 * RADIUS as usize;
        let new_acc = || vec![0u64; dense_len];
        let dense = outputs
            .par_iter()
            .fold(new_acc, |mut acc: Vec<u64>, o| {
                for &c in &o.codes {
                    acc[c as usize] += 1;
                }
                acc
            })
            .reduce(new_acc, |mut a: Vec<u64>, b: Vec<u64>| {
                for (d, s) in a.iter_mut().zip(&b) {
                    *d += s;
                }
                a
            });
        dense
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(s, &f)| (s as u32, f))
            .collect::<Vec<_>>()
    };
    let book = Codebook::from_frequencies(&hist)?;
    let streams: Vec<Vec<u8>> = outputs
        .par_iter()
        .map(|o| {
            let mut w = BitWriter::with_capacity(o.codes.len() / 2);
            for &c in &o.codes {
                book.encode(c, &mut w)?;
            }
            Ok(w.into_bytes())
        })
        .collect::<Vec<Result<Vec<u8>>>>()
        .into_iter()
        .collect::<Result<Vec<Vec<u8>>>>()?;

    let mut body = Vec::new();
    for (o, s) in outputs.iter().zip(&streams) {
        body.extend_from_slice(&(o.outliers.len() as u32).to_le_bytes());
        body.extend_from_slice(&(s.len() as u32).to_le_bytes());
    }
    book.serialize(&mut body);
    for s in &streams {
        body.extend_from_slice(s);
    }
    for o in &outputs {
        for &v in &o.outliers {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }

    // lint: allow(alloc-arith) — encoder-side capacity hint on an already-materialized body
    let mut out = Vec::with_capacity(body.len() + 80);
    out.extend_from_slice(MAGIC);
    out.push(dims.ndim());
    for e in ext {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    out.extend_from_slice(&(block_size as u32).to_le_bytes());
    out.extend_from_slice(&eb.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decompresses a dual-quant stream.
pub fn decompress_dualquant(stream: &[u8]) -> Result<(Vec<f32>, Dims)> {
    const HDR: usize = 4 + 1 + 24 + 4 + 8 + 8 + 4 + 8;
    let mut rd = ByteReader::new(stream);
    rd.expect_magic(MAGIC, "SZDQ stream")?;
    let ndim = rd.u8()?;
    let nx = rd.u64_le_capped(MAX_EXTENT, "x extent")?;
    let ny = rd.u64_le_capped(MAX_EXTENT, "y extent")?;
    let nz = rd.u64_le_capped(MAX_EXTENT, "z extent")?;
    let dims = match ndim {
        1 => Dims::D1(nx),
        2 => Dims::D2(nx, ny),
        3 => Dims::D3(nx, ny, nz),
        v => return Err(Error::corrupt(format!("bad ndim {v}"))),
    };
    let block_size = rd.u32_le()? as usize;
    let eb = rd.f64_le()?;
    if !(eb.is_finite() && eb > 0.0) || block_size < 2 {
        return Err(Error::corrupt("bad header parameters"));
    }
    let nblocks = rd.u64_le_capped(u64::MAX >> 8, "block count")?;
    let crc = rd.u32_le()?;
    let body_len = rd.u64_le_capped(u64::MAX >> 8, "body length")?;
    debug_assert_eq!(rd.pos(), HDR);
    let body = stream.get(HDR..).ok_or_else(|| Error::corrupt("truncated SZDQ header"))?;
    if body.len() != body_len {
        return Err(Error::corrupt("body length mismatch"));
    }
    if crc32(body) != crc {
        return Err(Error::corrupt("body CRC mismatch"));
    }
    let ext = dims.extents();
    let blocks = block::partition(dims, block_size);
    if blocks.len() != nblocks {
        return Err(Error::corrupt("block count mismatch"));
    }
    let meta_len = nblocks.checked_mul(8).ok_or_else(|| Error::corrupt("meta overflow"))?;
    let mut meta_rd = ByteReader::new(
        body.get(..meta_len).ok_or_else(|| Error::corrupt("truncated meta"))?,
    );
    let mut metas = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let n_out = meta_rd.u32_le()? as usize;
        let s_len = meta_rd.u32_le()? as usize;
        metas.push((n_out, s_len));
    }
    let table = body.get(meta_len..).ok_or_else(|| Error::corrupt("truncated table"))?;
    let (book, table_len) = Codebook::deserialize(table)?;
    let codes_start = meta_len + table_len;
    let total_stream: u64 = metas.iter().map(|&(_, s)| s as u64).sum();
    let total_out: u64 = metas.iter().map(|&(o, _)| o as u64).sum();
    if (body.len() as u64) < codes_start as u64 + total_stream + total_out * 4 {
        return Err(Error::corrupt("truncated payload"));
    }
    let outliers_start = codes_start + total_stream as usize;

    let mut out = vec![0.0f32; dims.len()];
    let ptr = crate::stream::SendPtr(out.as_mut_ptr());
    let out_len = out.len();
    let mut code_off = codes_start;
    let mut out_off = 0usize;
    let mut offsets = Vec::with_capacity(nblocks);
    for &(n_out, s_len) in &metas {
        offsets.push((code_off, out_off));
        code_off += s_len;
        out_off += n_out;
    }
    blocks
        .par_iter()
        .enumerate()
        .try_for_each(|(bi, b)| -> Result<()> {
            let (c_off, o_off) = offsets[bi];
            let (n_out, s_len) = metas[bi];
            let code_bytes = body
                .get(c_off..c_off + s_len)
                .ok_or_else(|| Error::corrupt("code stream out of range"))?;
            let mut r = BitReader::new(code_bytes);
            let mut codes = Vec::new();
            book.decode_into(&mut r, b.cells(), &mut codes)?;
            if codes.iter().filter(|&&c| c == 0).count() != n_out {
                return Err(Error::corrupt("outlier count mismatch"));
            }
            let ostart = outliers_start + o_off * 4;
            let outliers: Vec<f32> = body
                .get(ostart..ostart + n_out * 4)
                .ok_or_else(|| Error::corrupt("outliers out of range"))?
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let p = ptr;
            // SAFETY: blocks partition the domain, so each task writes only its
            // own block's disjoint cells (the racecheck sanitizer validates this
            // exact claim through `gpu_exec`).
            #[allow(unsafe_code)]
            let slice = unsafe { std::slice::from_raw_parts_mut(p.0, out_len) };
            decompress_block_dq(&codes, &outliers, b, eb, ext, slice);
            Ok(())
        })?;
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.013).sin() * 50.0 + (i as f32 * 0.0007).cos() * 500.0).collect()
    }

    fn check_bound(orig: &[f32], rec: &[f32], eb: f64) {
        for (a, b) in orig.iter().zip(rec) {
            if a.is_finite() {
                assert!((*a as f64 - *b as f64).abs() <= eb + 1e-9, "{a} vs {b}");
            } else {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "non-finite must survive verbatim"
                );
            }
        }
    }

    #[test]
    fn roundtrip_1d_respects_bound() {
        let data = field(20_000);
        for eb in [0.5, 0.01] {
            let s = compress_dualquant(&data, Dims::D1(20_000), eb, 32).unwrap();
            let (rec, dims) = decompress_dualquant(&s).unwrap();
            assert_eq!(dims, Dims::D1(20_000));
            check_bound(&data, &rec, eb);
        }
    }

    #[test]
    fn roundtrip_3d_respects_bound() {
        let data = field(17 * 13 * 9);
        let s = compress_dualquant(&data, Dims::D3(17, 13, 9), 0.1, 8).unwrap();
        let (rec, _) = decompress_dualquant(&s).unwrap();
        check_bound(&data, &rec, 0.1);
    }

    #[test]
    fn compression_is_comparable_to_classic_sz() {
        // Dual-quant trades a little ratio for parallel prediction; it
        // must stay within ~1.5x of the classic Lorenzo bitrate.
        let data = field(32 * 32 * 32);
        let dims = Dims::D3(32, 32, 32);
        let dq = compress_dualquant(&data, dims, 0.05, 32).unwrap();
        let classic = crate::stream::compress(
            &data,
            dims,
            &crate::config::SzConfig {
                predictor: crate::config::PredictorKind::Lorenzo,
                ..crate::config::SzConfig::abs(0.05)
            },
        )
        .unwrap();
        let ratio = dq.len() as f64 / classic.len() as f64;
        assert!(ratio < 1.5, "dual-quant {} vs classic {} bytes", dq.len(), classic.len());
        assert!(dq.len() * 2 < data.len() * 4, "should actually compress");
    }

    #[test]
    fn non_finite_inputs_are_flagged() {
        let mut data = field(256);
        data[7] = f32::NAN;
        data[100] = f32::INFINITY;
        let s = compress_dualquant(&data, Dims::D1(256), 0.1, 16).unwrap();
        let (rec, _) = decompress_dualquant(&s).unwrap();
        assert!(rec[7].is_nan());
        assert_eq!(rec[100], f32::INFINITY, "non-finite survives verbatim");
        check_bound(&data, &rec, 0.1);
    }

    #[test]
    fn corrupt_streams_error() {
        let data = field(1000);
        let s = compress_dualquant(&data, Dims::D1(1000), 0.1, 32).unwrap();
        assert!(decompress_dualquant(&s[..20]).is_err());
        let mut bad = s.clone();
        let n = bad.len();
        bad[n - 5] ^= 0xff;
        assert!(decompress_dualquant(&bad).is_err());
        assert!(decompress_dualquant(b"XXXX").is_err());
    }

    #[test]
    fn invalid_args_rejected() {
        assert!(compress_dualquant(&[1.0], Dims::D1(1), 0.0, 32).is_err());
        assert!(compress_dualquant(&[1.0], Dims::D1(2), 0.1, 32).is_err());
    }
}
