//! Traced device execution of the SZ pipeline.
//!
//! Runs the same block kernels as [`crate::stream`] through the gpu-sim
//! block executor, declaring every tracked-buffer range each block reads
//! or writes so the sanitizer can bounds-check them (memcheck) and
//! intersect them across blocks (racecheck). The stream bytes themselves
//! come from the shared [`crate::stream`] assemble/decode-plan code, so
//! traced output is byte-identical to the plain CPU path.
//!
//! Device buffers model the paper's scenario (§III Metric 4): the input
//! field is already resident in GPU memory (`sz.in`), quantization codes
//! land in `sz.quant`, entropy coding stages per-block bitstreams into
//! worst-case slots of `sz.codes` (as real GPU entropy coders do before
//! the compaction prefix-sum), and only the compressed stream crosses
//! PCIe. Decompression mirrors it: the stream body uploads into
//! `sz.body`, blocks scatter into `sz.out`, and the full array downloads
//! at the end — which doubles as a whole-buffer initialization check.

use crate::block::{self, Block, BlockOutput};
use crate::config::{Dims, SzConfig};
use crate::huffman::Codebook;
use crate::stream::{self, ModePlan, SendPtr};
use foresight_util::{Error, Result};
use gpu_sim::{
    launch_grid_traced, BlockAccess, BlockGrid, BufferId, Device, GpuRunReport, KernelKind,
};

/// Records one block's row-wise accesses to an `f32` array buffer: one
/// contiguous byte range per `(y, z)` row of the block.
fn record_rows(acc: &mut BlockAccess, buf: BufferId, b: &Block, ext: [usize; 3], write: bool) {
    let [nx, ny, _] = ext;
    for dz in 0..b.size[2] {
        for dy in 0..b.size[1] {
            let row = ((b.origin[2] + dz) * ny + (b.origin[1] + dy)) * nx + b.origin[0];
            let start = row as u64 * 4;
            let end = start + b.size[0] as u64 * 4;
            if write {
                acc.write(buf, start, end);
            } else {
                acc.read(buf, start, end);
            }
        }
    }
}

/// Compresses `data` on the simulated device with sanitizer tracing.
///
/// Produces exactly the bytes of [`crate::compress`]; the report mirrors
/// [`gpu_sim::run_compression`] (kernel and overall throughput over the
/// uncompressed size, only the compressed stream charged to PCIe).
pub fn compress_on(
    device: &mut Device,
    data: &[f32],
    dims: Dims,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, GpuRunReport)> {
    stream::validate_input(data, dims, cfg)?;
    let plan = stream::plan_mode(data, cfg);
    device.reset_clock();
    let mut held = Vec::new();
    let run = compress_launches(device, plan.working_data(data), dims, cfg, &plan, &mut held)
        .and_then(|(outputs, code_streams, book)| {
            let out = stream::assemble(dims, cfg, &plan, &outputs, &code_streams, &book);
            device.d2h(out.len() as u64)?;
            Ok(out)
        });
    let out = match run {
        Ok(out) => out,
        Err(e) => {
            for id in held {
                device.release(id);
            }
            return Err(e);
        }
    };
    for id in held.into_iter().rev() {
        device.free(id)?;
    }
    let clen = out.len() as u64;
    let rep = GpuRunReport::from_breakdown(device.breakdown(), (data.len() * 4) as u64, clen);
    Ok((out, rep))
}

fn compress_launches(
    device: &mut Device,
    data: &[f32],
    dims: Dims,
    cfg: &SzConfig,
    plan: &ModePlan,
    held: &mut Vec<BufferId>,
) -> Result<(Vec<BlockOutput>, Vec<Vec<u8>>, Codebook)> {
    let ext = dims.extents();
    let blocks = block::partition(dims, cfg.block_size);
    let data_bytes = (data.len() as u64) * 4;

    let in_buf = device.malloc(data_bytes, "sz.in")?;
    held.push(in_buf);
    device.mark_resident(in_buf)?;
    let quant = device.malloc(data_bytes, "sz.quant")?;
    held.push(quant);

    let vpb = (data.len() as u64).div_ceil(blocks.len().max(1) as u64);
    let grid = BlockGrid { blocks: blocks.len(), values_per_block: vpb, bits_per_value: 32.0 };
    let (outputs, _) =
        launch_grid_traced(device, KernelKind::SzCompress, grid, "sz.quantize", |bi, acc| {
            let b = &blocks[bi];
            record_rows(acc, in_buf, b, ext, false);
            record_rows(acc, quant, b, ext, true);
            block::compress_block(data, ext, b, plan.eb_abs, cfg.radius, cfg.predictor)
        })?;

    let book = stream::global_codebook(&outputs, cfg.radius)?;

    // Worst-case per-block staging slots for the encoded bitstreams
    // (64 bits per value plus slack), allocated up front the way real
    // GPU entropy coders do before the compaction prefix-sum pass.
    let max_cells = blocks.iter().map(Block::cells).max().unwrap_or(0) as u64;
    let stage_cap = max_cells
        .checked_mul(8)
        .and_then(|c| c.checked_add(64))
        .ok_or_else(|| Error::invalid("encode staging slot overflows"))?;
    let stage_total = stage_cap
        .checked_mul(blocks.len() as u64)
        .ok_or_else(|| Error::invalid("encode staging size overflows"))?;
    let codes_buf = device.malloc(stage_total, "sz.codes")?;
    held.push(codes_buf);

    let (enc, _) =
        launch_grid_traced(device, KernelKind::SzCompress, grid, "sz.huffman_encode", |bi, acc| {
            record_rows(acc, quant, &blocks[bi], ext, false);
            let cs = stream::encode_block_codes(&outputs[bi].codes, &book)?;
            let start = bi as u64 * stage_cap;
            acc.write(codes_buf, start, start + cs.len() as u64);
            Ok(cs)
        })?;
    let code_streams = enc.into_iter().collect::<Result<Vec<Vec<u8>>>>()?;
    Ok((outputs, code_streams, book))
}

/// Decompresses a stream on the simulated device with sanitizer tracing.
///
/// Produces exactly the result of [`crate::decompress`].
pub fn decompress_on(
    device: &mut Device,
    stream_bytes: &[u8],
) -> Result<(Vec<f32>, Dims, GpuRunReport)> {
    let inf = stream::info(stream_bytes)?;
    device.reset_clock();
    let mut scratch = Vec::new();
    let body = stream::checked_body(&inf, stream_bytes, &mut scratch)?;
    let plan = stream::prepare_decode(&inf, body)?;

    let mut held = Vec::new();
    let run = decode_launch(device, &inf, &plan, body, &mut held);
    let out = match run {
        Ok(out) => out,
        Err(e) => {
            for id in held {
                device.release(id);
            }
            return Err(e);
        }
    };
    for id in held.into_iter().rev() {
        device.free(id)?;
    }
    let out = stream::finish_pwrel(&inf, &plan, body, out)?;
    let unc = (plan.n_values * 4) as u64;
    let rep =
        GpuRunReport::from_breakdown(device.breakdown(), unc, stream_bytes.len() as u64);
    Ok((out, inf.dims, rep))
}

fn decode_launch(
    device: &mut Device,
    inf: &stream::StreamInfo,
    plan: &stream::DecodePlan,
    body: &[u8],
    held: &mut Vec<BufferId>,
) -> Result<Vec<f32>> {
    let body_buf = device.malloc(body.len() as u64, "sz.body")?;
    held.push(body_buf);
    device.h2d_buf(body_buf)?;
    let out_bytes = (plan.n_values as u64)
        .checked_mul(4)
        .ok_or_else(|| Error::corrupt("sz output byte size overflows"))?;
    let out_buf = device.malloc(out_bytes, "sz.out")?;
    held.push(out_buf);

    let ext = inf.dims.extents();
    let mut out = vec![0.0f32; plan.n_values];
    let ptr = SendPtr(out.as_mut_ptr());
    let out_len = out.len();
    let nblocks = plan.blocks.len();
    let vpb = (plan.n_values as u64).div_ceil(nblocks.max(1) as u64);
    let bits = if plan.n_values == 0 {
        0.0
    } else {
        body.len() as f64 * 8.0 / plan.n_values as f64
    };
    let grid = BlockGrid { blocks: nblocks, values_per_block: vpb, bits_per_value: bits };
    let (results, _) = launch_grid_traced(
        device,
        KernelKind::SzDecompress,
        grid,
        "sz.huffman_decode",
        |bi, acc| {
            let (cs, ce) = plan.code_range(bi);
            acc.read(body_buf, cs as u64, ce as u64);
            let (os, oe) = plan.outlier_range(bi);
            acc.read(body_buf, os as u64, oe as u64);
            record_rows(acc, out_buf, &plan.blocks[bi], ext, true);
            let p = ptr;
            // SAFETY: blocks partition the array without overlap (see
            // `stream::SendPtr`); the racecheck verifies that claim over
            // the ranges recorded just above.
            #[allow(unsafe_code)]
            let slice = unsafe { std::slice::from_raw_parts_mut(p.0, out_len) };
            stream::decode_block_into(inf, plan, body, bi, slice)
        },
    )?;
    results.into_iter().collect::<Result<()>>()?;
    device.d2h_buf(out_buf, "sz.out")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;
    use gpu_sim::{GpuSpec, SanitizerConfig};

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.013).sin() * 50.0 + (i as f32 * 0.0007).cos() * 500.0)
            .collect()
    }

    fn traced_device() -> Device {
        Device::new(GpuSpec::tesla_v100()).with_sanitizer(SanitizerConfig::full())
    }

    #[test]
    fn traced_stream_is_byte_identical_for_every_mode() {
        let data = field(24 * 24 * 24);
        let dims = Dims::D3(24, 24, 24);
        for mode in [ErrorBound::Abs(0.05), ErrorBound::Rel(1e-3), ErrorBound::PwRel(1e-2)] {
            let cfg = SzConfig { mode, ..SzConfig::abs(1.0) };
            let plain = crate::compress(&data, dims, &cfg).unwrap();
            let mut dev = traced_device();
            let (traced, rep) = compress_on(&mut dev, &data, dims, &cfg).unwrap();
            assert_eq!(plain, traced, "{mode:?}");
            assert_eq!(rep.compressed_bytes as usize, traced.len());
            assert!(rep.breakdown.kernel > 0.0 && rep.breakdown.memcpy > 0.0);

            let (plain_rec, plain_dims) = crate::decompress(&plain).unwrap();
            let (rec, rdims, _) = decompress_on(&mut dev, &traced).unwrap();
            assert_eq!(plain_dims, rdims);
            assert_eq!(plain_rec, rec, "{mode:?}");

            let report = dev.sanitizer_report().unwrap();
            assert!(report.is_clean(), "sanitizer findings: {:?}", report.diagnostics);
            assert_eq!(dev.allocated_bytes(), 0);
        }
    }

    #[test]
    fn traced_run_reports_zero_findings_in_1d_and_2d() {
        for (dims, n) in [(Dims::D1(5000), 5000), (Dims::D2(96, 70), 96 * 70)] {
            let data = field(n);
            let cfg = SzConfig::abs(0.1);
            let mut dev = traced_device();
            let (stream, _) = compress_on(&mut dev, &data, dims, &cfg).unwrap();
            let (rec, rdims, _) = decompress_on(&mut dev, &stream).unwrap();
            assert_eq!(rdims, dims);
            assert_eq!(rec, crate::decompress(&stream).unwrap().0);
            let report = dev.sanitizer_report().unwrap();
            assert!(report.is_clean(), "{:?}", report.diagnostics);
        }
    }

    #[test]
    fn dualquant_blocks_are_race_free_under_tracing() {
        // Route the dual-quant block kernel through a traced launch: each
        // block decodes into its own cells of a shared output buffer.
        let data = field(4096);
        let dims = Dims::D1(4096);
        let ext = dims.extents();
        let blocks = block::partition(dims, 16);
        let eb = 0.05;
        let mut dev = traced_device();
        let out_buf = dev.malloc((data.len() * 4) as u64, "szdq.out").unwrap();
        let mut out = vec![0.0f32; data.len()];
        let ptr = SendPtr(out.as_mut_ptr());
        let out_len = out.len();
        let grid = BlockGrid {
            blocks: blocks.len(),
            values_per_block: (data.len() / blocks.len().max(1)) as u64,
            bits_per_value: 32.0,
        };
        launch_grid_traced(&mut dev, KernelKind::SzDecompress, grid, "szdq", |bi, acc| {
            let b = &blocks[bi];
            let dq = crate::gpu_kernel::compress_block_dq(&data, ext, b, eb);
            record_rows(acc, out_buf, b, ext, true);
            let p = ptr;
            // SAFETY: disjoint blocks, validated by the racecheck.
            #[allow(unsafe_code)]
            let slice = unsafe { std::slice::from_raw_parts_mut(p.0, out_len) };
            crate::gpu_kernel::decompress_block_dq(&dq.codes, &dq.outliers, b, eb, ext, slice);
        })
        .unwrap();
        dev.free(out_buf).unwrap();
        let report = dev.sanitizer_report().unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        for (a, b) in data.iter().zip(&out) {
            assert!((*a as f64 - *b as f64).abs() <= eb + 1e-9);
        }
    }

    #[test]
    fn error_paths_release_all_device_buffers() {
        // Persistent kernel faults abort both pipelines mid-flight, after
        // their buffers exist; the unwind must release every one.
        use gpu_sim::{FaultPlan, FaultRates};
        let data = field(1000);
        let cfg = SzConfig::abs(0.1);
        let mut ok_dev = traced_device();
        let (stream, _) = compress_on(&mut ok_dev, &data, Dims::D1(1000), &cfg).unwrap();

        let rates = FaultRates { kernel: 1.0, ..Default::default() };
        let mut dev = Device::new(GpuSpec::tesla_v100())
            .with_sanitizer(SanitizerConfig::full())
            .with_fault_plan(FaultPlan::new(5, rates).with_max_retries(1));
        assert!(compress_on(&mut dev, &data, Dims::D1(1000), &cfg).is_err());
        assert_eq!(dev.allocated_bytes(), 0, "leak: {:?}", dev.leak_report());
        assert!(decompress_on(&mut dev, &stream).is_err());
        assert_eq!(dev.allocated_bytes(), 0, "leak: {:?}", dev.leak_report());
    }
}
