//! Configuration types for the SZ-style compressor.

use foresight_util::{Error, Result};

/// Logical dimensions of the input array.
///
/// GPU-SZ in the paper only supports 3-D inputs; the HACC 1-D arrays are
/// reshaped to 3-D before compression (paper §IV-B-4). This implementation
/// supports 1-D/2-D/3-D natively, and the benchmark harness reproduces the
/// paper's reshaping through `cosmo-data`'s dimension-conversion helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dims {
    /// 1-D array of `n` values.
    D1(usize),
    /// 2-D array, `nx` fastest.
    D2(usize, usize),
    /// 3-D array, `nx` fastest: `index = x + nx*(y + ny*z)`.
    D3(usize, usize, usize),
}

impl Dims {
    /// Total number of values.
    pub fn len(&self) -> usize {
        match *self {
            Dims::D1(n) => n,
            Dims::D2(nx, ny) => nx * ny,
            Dims::D3(nx, ny, nz) => nx * ny * nz,
        }
    }

    /// True when the array holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of values, or `None` on arithmetic overflow — for
    /// dims that come from an untrusted stream header.
    pub fn checked_len(&self) -> Option<usize> {
        match *self {
            Dims::D1(n) => Some(n),
            Dims::D2(nx, ny) => nx.checked_mul(ny),
            Dims::D3(nx, ny, nz) => nx.checked_mul(ny)?.checked_mul(nz),
        }
    }

    /// Number of dimensions (1, 2, or 3).
    pub fn ndim(&self) -> u8 {
        match self {
            Dims::D1(_) => 1,
            Dims::D2(..) => 2,
            Dims::D3(..) => 3,
        }
    }

    /// Extents as a `[nx, ny, nz]` triple (unused axes are 1).
    pub fn extents(&self) -> [usize; 3] {
        match *self {
            Dims::D1(n) => [n, 1, 1],
            Dims::D2(nx, ny) => [nx, ny, 1],
            Dims::D3(nx, ny, nz) => [nx, ny, nz],
        }
    }
}

/// Error-bound mode (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute: `|x' - x| <= eb`.
    Abs(f64),
    /// Value-range relative: `|x' - x| <= rel * (max - min)`.
    Rel(f64),
    /// Point-wise relative: `|x' - x| <= pw * |x|`, implemented with the
    /// logarithmic transform of Liang et al. (paper §IV-B-4).
    PwRel(f64),
}

impl ErrorBound {
    /// The numeric bound parameter.
    pub fn value(&self) -> f64 {
        match *self {
            ErrorBound::Abs(v) | ErrorBound::Rel(v) | ErrorBound::PwRel(v) => v,
        }
    }

    /// Validates positivity and finiteness.
    pub fn validate(&self) -> Result<()> {
        let v = self.value();
        if !(v.is_finite() && v > 0.0) {
            return Err(Error::invalid(format!("error bound must be finite and positive, got {v}")));
        }
        Ok(())
    }
}

/// Prediction scheme selection (SZ 2.x adaptive predictor, paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// First-order Lorenzo predictor on reconstructed neighbors.
    Lorenzo,
    /// Per-block linear regression `b0 + b1 x + b2 y + b3 z`.
    Regression,
    /// Choose per block whichever predictor has smaller sampled residuals.
    #[default]
    Adaptive,
}

/// Lossless backend applied to the entropy-coded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyBackend {
    /// Canonical Huffman only (SZ default).
    #[default]
    Huffman,
    /// Huffman followed by an LZSS pass over the payload bytes
    /// (stands in for SZ's Zstd stage).
    HuffmanLzss,
}

/// Full compressor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SzConfig {
    /// Error-bound mode and magnitude.
    pub mode: ErrorBound,
    /// Prediction scheme.
    pub predictor: PredictorKind,
    /// Cubic block edge (3-D), tile edge (2-D), or segment length scale
    /// (1-D uses `block_size^2` long segments to amortize per-block cost).
    pub block_size: usize,
    /// Entropy/lossless backend.
    pub entropy: EntropyBackend,
    /// Quantization radius: codes span `[-(radius-1), radius-1]`.
    pub radius: u32,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            mode: ErrorBound::Abs(1e-3),
            predictor: PredictorKind::Adaptive,
            block_size: 32,
            entropy: EntropyBackend::Huffman,
            radius: 32768,
        }
    }
}

impl SzConfig {
    /// Convenience constructor for ABS mode with default everything else.
    pub fn abs(eb: f64) -> Self {
        Self { mode: ErrorBound::Abs(eb), ..Self::default() }
    }

    /// Convenience constructor for value-range-relative mode.
    pub fn rel(rel: f64) -> Self {
        Self { mode: ErrorBound::Rel(rel), ..Self::default() }
    }

    /// Convenience constructor for point-wise-relative mode.
    pub fn pw_rel(pw: f64) -> Self {
        Self { mode: ErrorBound::PwRel(pw), ..Self::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.mode.validate()?;
        if self.block_size < 2 {
            return Err(Error::invalid("block_size must be at least 2"));
        }
        if self.radius < 2 || self.radius > 1 << 20 {
            return Err(Error::invalid("radius must be in [2, 2^20]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_len_and_extents() {
        assert_eq!(Dims::D1(10).len(), 10);
        assert_eq!(Dims::D2(4, 5).len(), 20);
        assert_eq!(Dims::D3(2, 3, 4).len(), 24);
        assert_eq!(Dims::D3(2, 3, 4).extents(), [2, 3, 4]);
        assert_eq!(Dims::D1(7).extents(), [7, 1, 1]);
        assert_eq!(Dims::D2(7, 8).ndim(), 2);
    }

    #[test]
    fn error_bound_validation() {
        assert!(ErrorBound::Abs(0.1).validate().is_ok());
        assert!(ErrorBound::Abs(0.0).validate().is_err());
        assert!(ErrorBound::Rel(-1.0).validate().is_err());
        assert!(ErrorBound::PwRel(f64::NAN).validate().is_err());
    }

    #[test]
    fn config_validation() {
        assert!(SzConfig::abs(1.0).validate().is_ok());
        let mut c = SzConfig::abs(1.0);
        c.block_size = 1;
        assert!(c.validate().is_err());
        let mut c = SzConfig::abs(1.0);
        c.radius = 1;
        assert!(c.validate().is_err());
    }
}
