//! SZ-style prediction-based error-bounded lossy compressor.
//!
//! A from-scratch Rust reproduction of the GPU-SZ compressor evaluated in
//! *Understanding GPU-Based Lossy Compression for Extreme-Scale Cosmological
//! Simulations* (Jin et al., 2020). The pipeline follows SZ 2.x:
//!
//! 1. **Blocked prediction** — the array is cut into independent blocks
//!    (GPU-style parallel decomposition); within a block each value is
//!    predicted by either a first-order Lorenzo stencil over already
//!    reconstructed neighbors or a per-block linear regression model,
//!    chosen adaptively.
//! 2. **Error-controlled quantization** — the prediction residual is
//!    quantized to an integer code such that reconstruction differs from
//!    the input by at most the user's error bound; values that don't fit
//!    the code range (or are non-finite) are stored verbatim as outliers.
//! 3. **Entropy coding** — a global canonical Huffman code over all
//!    quantization integers, optionally followed by an LZSS pass standing
//!    in for SZ's Zstd stage.
//!
//! Error-bound modes: absolute ([`ErrorBound::Abs`]), value-range relative
//! ([`ErrorBound::Rel`]), and point-wise relative ([`ErrorBound::PwRel`],
//! realized with the logarithmic transform of Liang et al., exactly as the
//! paper does for HACC velocity fields).
//!
//! # Example
//!
//! ```
//! use lossy_sz::{compress, decompress, Dims, SzConfig};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let stream = compress(&data, Dims::D1(4096), &SzConfig::abs(1e-3)).unwrap();
//! let (recon, dims) = decompress(&stream).unwrap();
//! assert_eq!(dims, Dims::D1(4096));
//! assert!(data.iter().zip(&recon).all(|(a, b)| (a - b).abs() <= 1e-3));
//! ```

// `deny` rather than `forbid`: the parallel block-scatter paths carry two
// item-level `#[allow(unsafe_code)]` pointer wrappers whose disjointness
// claim the gpu-sim racecheck validates mechanically (see `gpu_exec`).
#![deny(unsafe_code)]

pub mod block;
pub mod config;
pub mod gpu_exec;
pub mod gpu_kernel;
pub mod huffman;
pub mod lossless;
pub mod pwrel;
pub mod stream;
pub mod temporal;

pub use config::{Dims, EntropyBackend, ErrorBound, PredictorKind, SzConfig};
pub use stream::{compress, decompress, info, StreamInfo, MAGIC};
pub use gpu_kernel::{compress_dualquant, decompress_dualquant};
pub use temporal::{compress_temporal, decompress_temporal};

/// Compression ratio of `stream` relative to `n_values` single-precision
/// inputs.
pub fn compression_ratio(n_values: usize, stream_len: usize) -> f64 {
    if stream_len == 0 {
        return f64::INFINITY;
    }
    (n_values * 4) as f64 / stream_len as f64
}

/// Bitrate (bits per value) of `stream` for `n_values` inputs.
pub fn bitrate(n_values: usize, stream_len: usize) -> f64 {
    if n_values == 0 {
        return 0.0;
    }
    (stream_len * 8) as f64 / n_values as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate_are_consistent() {
        // 32-bit inputs: ratio r <-> bitrate 32/r.
        let r = compression_ratio(1000, 500);
        let b = bitrate(1000, 500);
        assert!((r - 8.0).abs() < 1e-12);
        assert!((b - 4.0).abs() < 1e-12);
        assert!((32.0 / r - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_ratio_inputs() {
        assert!(compression_ratio(10, 0).is_infinite());
        assert_eq!(bitrate(0, 100), 0.0);
    }
}
