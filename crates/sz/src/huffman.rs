//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ's third stage entropy-codes the quantization integers; following the
//! reference implementation we build **one global code table** from the
//! histogram of all blocks, then encode each block's code sequence
//! independently (so blocks stay decodable in parallel).
//!
//! Codes are canonical: lengths come from the Huffman tree, the actual bit
//! patterns are reassigned in (length, symbol) order. Only the
//! (symbol, length) pairs are serialized; both sides rebuild identical
//! codebooks. Bits are emitted MSB-first into the workspace's LSB-first
//! bitstream by writing one bit at a time in code order.

use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::{Error, Result};
use std::collections::BinaryHeap;

/// Maximum supported code length (paranoia guard; real tables are shorter).
const MAX_LEN: u8 = 58;

/// A canonical Huffman codebook.
#[derive(Debug, Clone)]
pub struct Codebook {
    /// (symbol, length) sorted by (length, symbol) — the canonical order.
    entries: Vec<(u32, u8)>,
    /// Encoder map: symbol -> (code, length); index into a hash-free dense
    /// vec when symbols are small, fallback binary-search otherwise.
    enc: Vec<(u64, u8)>,
    /// Densely indexed up to this symbol value; entries beyond are absent.
    enc_limit: u32,
    /// Decoder tables per length: first canonical code and slice range.
    first_code: [u64; MAX_LEN as usize + 1],
    offset: [u32; MAX_LEN as usize + 1],
    count: [u32; MAX_LEN as usize + 1],
}

impl Codebook {
    /// Builds a codebook from symbol frequencies (`(symbol, count)` pairs
    /// with nonzero counts). Returns an empty book for an empty histogram.
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Result<Self> {
        let lengths = code_lengths(freqs)?;
        Self::from_lengths(lengths)
    }

    /// Rebuilds a codebook from (symbol, length) pairs.
    pub fn from_lengths(mut entries: Vec<(u32, u8)>) -> Result<Self> {
        for &(_, len) in &entries {
            if len == 0 || len > MAX_LEN {
                return Err(Error::corrupt(format!("huffman length {len} out of range")));
            }
        }
        entries.sort_unstable_by_key(|&(sym, len)| (len, sym));
        // Check for duplicate symbols.
        let mut sorted_syms: Vec<u32> = entries.iter().map(|e| e.0).collect();
        sorted_syms.sort_unstable();
        if sorted_syms.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::corrupt("duplicate symbol in huffman table"));
        }
        // Assign canonical codes and build per-length decode tables.
        let mut first_code = [0u64; MAX_LEN as usize + 1];
        let mut offset = [0u32; MAX_LEN as usize + 1];
        let mut count = [0u32; MAX_LEN as usize + 1];
        for &(_, len) in &entries {
            count[len as usize] += 1;
        }
        let mut code = 0u64;
        let mut idx = 0u32;
        for len in 1..=MAX_LEN as usize {
            code <<= 1;
            first_code[len] = code;
            offset[len] = idx;
            // Kraft validity: codes of this length must fit.
            if count[len] as u64 > (1u64 << len) - code {
                return Err(Error::corrupt("huffman table violates Kraft inequality"));
            }
            code += count[len] as u64;
            idx += count[len];
        }
        // A non-empty table must exactly satisfy Kraft (complete code) unless
        // it's the single-symbol degenerate case.
        // (We tolerate incompleteness to keep single-symbol tables simple.)

        // Encoder table.
        let enc_limit = entries.iter().map(|e| e.0).max().map_or(0, |m| m + 1);
        let mut enc = vec![(0u64, 0u8); enc_limit as usize];
        let mut next = first_code;
        for &(sym, len) in &entries {
            let c = next[len as usize];
            next[len as usize] += 1;
            enc[sym as usize] = (c, len);
        }
        Ok(Self { entries, enc, enc_limit, first_code, offset, count })
    }

    /// Number of coded symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the codebook codes no symbols.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical (symbol, length) entries.
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// Encodes one symbol.
    #[inline]
    pub fn encode(&self, sym: u32, w: &mut BitWriter) -> Result<()> {
        if sym >= self.enc_limit {
            return Err(Error::invalid(format!("symbol {sym} not in codebook")));
        }
        let (code, len) = self.enc[sym as usize];
        if len == 0 {
            return Err(Error::invalid(format!("symbol {sym} not in codebook")));
        }
        // Emit MSB-first.
        for i in (0..len).rev() {
            w.write_bit((code >> i) & 1 != 0);
        }
        Ok(())
    }

    /// Decodes one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u64;
        for len in 1..=MAX_LEN as usize {
            code = (code << 1) | r.read_bits(1)?;
            let c = self.count[len];
            if c != 0 {
                let rel = code.wrapping_sub(self.first_code[len]);
                if rel < c as u64 {
                    return Ok(self.entries[(self.offset[len] + rel as u32) as usize].0);
                }
            }
        }
        Err(Error::corrupt("invalid huffman code"))
    }

    /// Serializes the (symbol, length) table.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(sym, len) in &self.entries {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len);
        }
    }

    /// Deserializes a table written by [`Codebook::serialize`];
    /// returns the codebook and the number of bytes consumed.
    pub fn deserialize(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < 4 {
            return Err(Error::corrupt("huffman table truncated"));
        }
        let n = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let need = 4 + n * 5;
        if data.len() < need {
            return Err(Error::corrupt("huffman table truncated"));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let off = 4 + i * 5;
            let sym = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
            entries.push((sym, data[off + 4]));
        }
        Ok((Self::from_lengths(entries)?, need))
    }
}

/// Computes Huffman code lengths from a histogram.
fn code_lengths(freqs: &[(u32, u64)]) -> Result<Vec<(u32, u8)>> {
    let active: Vec<(u32, u64)> = freqs.iter().copied().filter(|&(_, f)| f > 0).collect();
    match active.len() {
        0 => return Ok(Vec::new()),
        1 => return Ok(vec![(active[0].0, 1)]),
        _ => {}
    }
    // Standard heap-based tree construction over node indices.
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        id: u32,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on id for determinism.
            other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let n = active.len();
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap = BinaryHeap::with_capacity(n);
    for (i, &(_, f)) in active.iter().enumerate() {
        heap.push(Node { freq: f, id: i as u32 });
    }
    let mut next_id = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id as usize] = next_id;
        parent[b.id as usize] = next_id;
        heap.push(Node { freq: a.freq.saturating_add(b.freq), id: next_id });
        next_id += 1;
    }
    // Depth of each leaf = code length.
    let mut out = Vec::with_capacity(n);
    for (i, &(sym, _)) in active.iter().enumerate() {
        let mut d = 0u8;
        let mut cur = i as u32;
        while parent[cur as usize] != u32::MAX {
            cur = parent[cur as usize];
            d += 1;
        }
        if d == 0 || d > MAX_LEN {
            return Err(Error::corrupt("degenerate huffman tree"));
        }
        out.push((sym, d));
    }
    Ok(out)
}

/// Convenience: builds a histogram of `codes`.
pub fn histogram(codes: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::HashMap::new();
    for &c in codes {
        *map.entry(c).or_insert(0u64) += 1;
    }
    let mut v: Vec<(u32, u64)> = map.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codes: &[u32]) {
        let book = Codebook::from_frequencies(&histogram(codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in codes {
            assert_eq!(book.decode(&mut r).unwrap(), c);
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&[1, 2, 2, 3, 3, 3, 3, 7, 7, 1, 2]);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42; 100]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        // Strongly skewed: symbol i has frequency ~ 2^(16-i).
        let mut codes = Vec::new();
        for sym in 0u32..16 {
            for _ in 0..(1u32 << (16 - sym)) {
                codes.push(sym);
            }
        }
        roundtrip(&codes);
    }

    #[test]
    fn compresses_skewed_data() {
        // 90% zeros should code in well under 8 bits/symbol.
        let codes: Vec<u32> = (0..10_000).map(|i| if i % 10 == 0 { i as u32 % 7 + 1 } else { 0 }).collect();
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bits = w.bit_len();
        assert!(bits < 2 * codes.len() as u64, "got {} bits", bits);
    }

    #[test]
    fn table_serialization_roundtrip() {
        let codes = [5u32, 5, 5, 9, 9, 1000, 65535, 65535, 65535, 65535];
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut buf = Vec::new();
        book.serialize(&mut buf);
        let (book2, consumed) = Codebook::deserialize(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(book.entries(), book2.entries());
        // Cross encode/decode.
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            assert_eq!(book2.decode(&mut r).unwrap(), c);
        }
    }

    #[test]
    fn unknown_symbol_errors() {
        let book = Codebook::from_frequencies(&[(1, 5), (2, 5)]).unwrap();
        let mut w = BitWriter::new();
        assert!(book.encode(3, &mut w).is_err());
        assert!(book.encode(1000, &mut w).is_err());
    }

    #[test]
    fn corrupt_table_rejected() {
        assert!(Codebook::deserialize(&[1, 0, 0]).is_err());
        // Duplicate symbols.
        assert!(Codebook::from_lengths(vec![(1, 1), (1, 2)]).is_err());
        // Kraft violation: three 1-bit codes.
        assert!(Codebook::from_lengths(vec![(1, 1), (2, 1), (3, 1)]).is_err());
        // Zero length.
        assert!(Codebook::from_lengths(vec![(1, 0)]).is_err());
    }

    #[test]
    fn empty_codebook() {
        let book = Codebook::from_frequencies(&[]).unwrap();
        assert!(book.is_empty());
        let mut buf = Vec::new();
        book.serialize(&mut buf);
        let (book2, _) = Codebook::deserialize(&buf).unwrap();
        assert!(book2.is_empty());
    }

    #[test]
    fn optimality_vs_entropy() {
        // Average code length must be within 1 bit of the entropy bound.
        let codes: Vec<u32> = (0..4096u32).map(|i| (i * i % 37) % 11).collect();
        let hist = histogram(&codes);
        let total: u64 = hist.iter().map(|&(_, f)| f).sum();
        let entropy: f64 = hist
            .iter()
            .map(|&(_, f)| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let book = Codebook::from_frequencies(&hist).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let avg = w.bit_len() as f64 / codes.len() as f64;
        assert!(avg >= entropy - 1e-9, "avg {avg} below entropy {entropy}");
        assert!(avg <= entropy + 1.0, "avg {avg} vs entropy {entropy}");
    }
}
