//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ's third stage entropy-codes the quantization integers; following the
//! reference implementation we build **one global code table** from the
//! histogram of all blocks, then encode each block's code sequence
//! independently (so blocks stay decodable in parallel).
//!
//! Codes are canonical: lengths come from the Huffman tree, the actual bit
//! patterns are reassigned in (length, symbol) order. Only the
//! (symbol, length) pairs are serialized; both sides rebuild identical
//! codebooks.
//!
//! The bit-level convention is MSB-first code emission into the
//! workspace's LSB-first bitstream. The encoder precomputes each code in
//! bit-reversed form so a whole symbol goes out in one
//! [`BitWriter::write_bits`] call, and the decoder resolves most symbols
//! with a single [`DECODE_LUT_BITS`]-bit table lookup (the coarse-grained
//! codebook scheme GPU Huffman implementations use), escaping to a
//! bit-at-a-time walk only for rare codes longer than the window.

use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::{ByteReader, Error, Result};
use std::collections::BinaryHeap;

/// Maximum supported code length (paranoia guard; real tables are shorter).
const MAX_LEN: u8 = 58;

/// Width of the decode lookup window: codes at most this long (the common
/// case by construction — high-frequency symbols get short codes) decode
/// with one table access.
const DECODE_LUT_BITS: u32 = 12;

/// Symbols below this value get a direct-indexed encoder slot; rarer,
/// larger symbols fall back to binary search so a single huge outlier
/// symbol cannot blow up the table allocation.
const ENC_DENSE_LIMIT: u32 = 1 << 16;

/// Maximum symbols resolved per decode-table probe.
const LUT_PACK: usize = 8;

/// One decode-window table slot: up to [`LUT_PACK`] complete codes
/// resolved from the next [`DECODE_LUT_BITS`] stream bits.
#[derive(Debug, Clone, Copy, Default)]
struct LutEntry {
    /// Decoded symbols; slots past `nsyms` are zero.
    syms: [u32; LUT_PACK],
    /// Complete codes in the window prefix: 0 escapes to the long-code
    /// walk, 1..=LUT_PACK decode directly.
    nsyms: u8,
    /// Total bits consumed by all `nsyms` symbols.
    bits: u8,
    /// Bits consumed by the first symbol alone.
    len1: u8,
}

/// A canonical Huffman codebook.
#[derive(Debug, Clone)]
pub struct Codebook {
    /// (symbol, length) sorted by (length, symbol) — the canonical order.
    entries: Vec<(u32, u8)>,
    /// Dense encoder map for symbols `< ENC_DENSE_LIMIT`:
    /// symbol -> (bit-reversed code, length); length 0 marks absent.
    enc: Vec<(u64, u8)>,
    /// Sparse encoder entries `(symbol, bit-reversed code, length)` for
    /// symbols `>= ENC_DENSE_LIMIT`, sorted by symbol.
    enc_sparse: Vec<(u32, u64, u8)>,
    /// Decode window table indexed by the next `DECODE_LUT_BITS` stream
    /// bits, resolving one or two symbols per probe.
    lut: Vec<LutEntry>,
    /// Decoder tables per length: first canonical code and slice range.
    first_code: [u64; MAX_LEN as usize + 1],
    offset: [u32; MAX_LEN as usize + 1],
    count: [u32; MAX_LEN as usize + 1],
}

impl Codebook {
    /// Builds a codebook from symbol frequencies (`(symbol, count)` pairs
    /// with nonzero counts). Returns an empty book for an empty histogram.
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Result<Self> {
        let lengths = code_lengths(freqs)?;
        Self::from_lengths(lengths)
    }

    /// Rebuilds a codebook from (symbol, length) pairs.
    pub fn from_lengths(mut entries: Vec<(u32, u8)>) -> Result<Self> {
        for &(_, len) in &entries {
            if len == 0 || len > MAX_LEN {
                return Err(Error::corrupt(format!("huffman length {len} out of range")));
            }
        }
        entries.sort_unstable_by_key(|&(sym, len)| (len, sym));
        // Check for duplicate symbols.
        let mut sorted_syms: Vec<u32> = entries.iter().map(|e| e.0).collect();
        sorted_syms.sort_unstable();
        if sorted_syms.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::corrupt("duplicate symbol in huffman table"));
        }
        // Assign canonical codes and build per-length decode tables.
        let mut first_code = [0u64; MAX_LEN as usize + 1];
        let mut offset = [0u32; MAX_LEN as usize + 1];
        let mut count = [0u32; MAX_LEN as usize + 1];
        for &(_, len) in &entries {
            count[len as usize] += 1;
        }
        let mut code = 0u64;
        let mut idx = 0u32;
        for len in 1..=MAX_LEN as usize {
            code <<= 1;
            first_code[len] = code;
            offset[len] = idx;
            // Kraft validity: codes of this length must fit.
            if count[len] as u64 > (1u64 << len) - code {
                return Err(Error::corrupt("huffman table violates Kraft inequality"));
            }
            code += count[len] as u64;
            idx += count[len];
        }
        // A non-empty table must exactly satisfy Kraft (complete code) unless
        // it's the single-symbol degenerate case.
        // (We tolerate incompleteness to keep single-symbol tables simple.)

        // Encoder and decoder fast-path tables. Codes are stored
        // bit-reversed: the old path emitted MSB-first one bit at a time
        // into the LSB-first stream, so the packed equivalent is the
        // reversed code written in a single call.
        let dense_len = entries
            .iter()
            .map(|e| e.0)
            .filter(|&s| s < ENC_DENSE_LIMIT)
            .max()
            .map_or(0, |m| m + 1);
        let mut enc = vec![(0u64, 0u8); dense_len as usize];
        let mut enc_sparse = Vec::new();
        let mut singles = vec![(0u32, 0u8); 1usize << DECODE_LUT_BITS];
        let mut next = first_code;
        for &(sym, len) in &entries {
            let c = next[len as usize];
            next[len as usize] += 1;
            let rev = c.reverse_bits() >> (64 - len as u32);
            if sym < ENC_DENSE_LIMIT {
                enc[sym as usize] = (rev, len);
            } else {
                enc_sparse.push((sym, rev, len));
            }
            if (len as u32) <= DECODE_LUT_BITS {
                // Every window whose low `len` bits equal this (reversed)
                // code decodes to this symbol.
                let step = 1usize << len;
                let mut idx = rev as usize;
                while idx < singles.len() {
                    singles[idx] = (sym, len);
                    idx += step;
                }
            }
        }
        enc_sparse.sort_unstable_by_key(|e| e.0);
        // Pack as many complete codes as fit into each window slot — short
        // codes dominate skewed quantization histograms, so most probes
        // then resolve several symbols at once.
        let mut lut = vec![LutEntry::default(); singles.len()];
        for w in 0..singles.len() {
            if singles[w].1 == 0 {
                continue; // escape: code longer than the window
            }
            let mut e = LutEntry { len1: singles[w].1, ..LutEntry::default() };
            let mut cur = w;
            while (e.nsyms as usize) < LUT_PACK {
                let (s, l) = singles[cur];
                if l == 0 || (e.bits + l) as u32 > DECODE_LUT_BITS {
                    break;
                }
                e.syms[e.nsyms as usize] = s;
                e.nsyms += 1;
                e.bits += l;
                cur >>= l;
            }
            lut[w] = e;
        }
        Ok(Self { entries, enc, enc_sparse, lut, first_code, offset, count })
    }

    /// Number of coded symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the codebook codes no symbols.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical (symbol, length) entries.
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// Looks up the (bit-reversed code, length) pair for a symbol.
    #[inline]
    fn lookup(&self, sym: u32) -> Result<(u64, u8)> {
        if (sym as usize) < self.enc.len() {
            let e = self.enc[sym as usize];
            if e.1 != 0 {
                return Ok(e);
            }
        } else if sym >= ENC_DENSE_LIMIT {
            if let Ok(i) = self.enc_sparse.binary_search_by_key(&sym, |e| e.0) {
                let (_, rev, len) = self.enc_sparse[i];
                return Ok((rev, len));
            }
        }
        Err(Error::invalid(format!("symbol {sym} not in codebook")))
    }

    /// Encodes one symbol with a single multi-bit write.
    #[inline]
    pub fn encode(&self, sym: u32, w: &mut BitWriter) -> Result<()> {
        let (rev, len) = self.lookup(sym)?;
        w.write_bits(rev, len as u32);
        Ok(())
    }

    /// Reference encoder: emits the canonical code MSB-first, one bit at a
    /// time — the original implementation, kept as the oracle for
    /// bit-identity tests and before/after throughput measurements.
    #[doc(hidden)]
    #[inline]
    pub fn encode_bitwise(&self, sym: u32, w: &mut BitWriter) -> Result<()> {
        let (rev, len) = self.lookup(sym)?;
        let code = rev.reverse_bits() >> (64 - len as u32);
        for i in (0..len).rev() {
            w.write_bit((code >> i) & 1 != 0);
        }
        Ok(())
    }

    /// Decodes one symbol, resolving codes up to [`DECODE_LUT_BITS`] long
    /// (the overwhelming majority) with a single table lookup. Longer
    /// codes are resolved from the same peeked window by walking the
    /// per-length tables in registers — still a single `consume` per
    /// symbol, never a per-bit stream read.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let e = &self.lut[r.peek_bits(DECODE_LUT_BITS) as usize];
        if e.nsyms != 0 {
            // Zero-padded peek bits past the end of the stream cannot
            // fabricate a symbol: consume() still errors if fewer than
            // `len1` real bits remain.
            r.consume(e.len1 as u32)?;
            return Ok(e.syms[0]);
        }
        self.decode_escape(r)
    }

    /// Decodes exactly `n` symbols into `out`, resolving up to
    /// [`LUT_PACK`] symbols per table probe. This is the bulk path
    /// `decompress` uses; equivalent to calling [`Codebook::decode`]
    /// `n` times.
    pub fn decode_into(&self, r: &mut BitReader<'_>, n: usize, out: &mut Vec<u32>) -> Result<()> {
        // Scratch tail: every probe stores all LUT_PACK slots
        // unconditionally and advances the cursor by the real count, so
        // over-stored slots are rewritten by the next probe or truncated.
        let start = out.len();
        out.resize(start + n + (LUT_PACK - 1), 0);
        // Work on a local copy of the reader so its accumulator state stays
        // in registers across the loop (the caller's &mut would pin it in
        // memory); written back on every exit path.
        let mut lr = r.clone();
        let s = &mut out[start..];
        let mut i = 0usize;
        let res = loop {
            if i + LUT_PACK > n {
                break Ok(());
            }
            let e = &self.lut[lr.peek_bits(DECODE_LUT_BITS) as usize];
            if e.nsyms == 0 {
                match self.decode_escape(&mut lr) {
                    Ok(sym) => s[i] = sym,
                    Err(err) => break Err(err),
                }
                i += 1;
                continue;
            }
            if let Err(err) = lr.consume(e.bits as u32) {
                break Err(err);
            }
            s[i..i + LUT_PACK].copy_from_slice(&e.syms);
            i += e.nsyms as usize;
        };
        if let Err(err) = res {
            *r = lr;
            out.truncate(start + i.min(n));
            return Err(err);
        }
        // Tail: fewer than LUT_PACK symbols remain; decode one at a time so
        // a multi-symbol probe cannot consume bits past the n-th code.
        while i < n {
            match self.decode(&mut lr) {
                Ok(sym) => s[i] = sym,
                Err(err) => {
                    *r = lr;
                    out.truncate(start + i);
                    return Err(err);
                }
            }
            i += 1;
        }
        *r = lr;
        out.truncate(start + n);
        Ok(())
    }

    /// Resolves a code longer than the LUT window: peeks a full-width
    /// window, rebuilds the MSB-first code value for its first
    /// DECODE_LUT_BITS bits, then extends one bit at a time in registers —
    /// still a single `consume`, never a per-bit stream read.
    #[cold]
    fn decode_escape(&self, r: &mut BitReader<'_>) -> Result<u32> {
        foresight_util::telemetry::counter("huffman.escape_hits", 1);
        const PEEK: u32 = 56;
        let window = r.peek_bits(PEEK);
        let mut code =
            (window & ((1 << DECODE_LUT_BITS) - 1)).reverse_bits() >> (64 - DECODE_LUT_BITS);
        for len in (DECODE_LUT_BITS + 1)..=PEEK.min(MAX_LEN as u32) {
            code = (code << 1) | ((window >> (len - 1)) & 1);
            let c = self.count[len as usize];
            if c != 0 {
                let rel = code.wrapping_sub(self.first_code[len as usize]);
                if rel < c as u64 {
                    r.consume(len)?;
                    return Ok(self.entries[(self.offset[len as usize] + rel as u32) as usize].0);
                }
            }
        }
        // Codes longer than the peek window (56 < len <= MAX_LEN) are
        // pathological; the reader is unconsumed, so the per-bit reference
        // walk still decodes them (or reports corruption/exhaustion).
        self.decode_bitwise(r)
    }

    /// Reference decoder: walks the per-length tables one bit at a time.
    /// Runtime escape path for codes longer than the lookup window, and
    /// the oracle for equivalence tests and throughput baselines.
    #[doc(hidden)]
    #[inline]
    pub fn decode_bitwise(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u64;
        for len in 1..=MAX_LEN as usize {
            code = (code << 1) | r.read_bits(1)?;
            let c = self.count[len];
            if c != 0 {
                let rel = code.wrapping_sub(self.first_code[len]);
                if rel < c as u64 {
                    return Ok(self.entries[(self.offset[len] + rel as u32) as usize].0);
                }
            }
        }
        Err(Error::corrupt("invalid huffman code"))
    }

    /// Serializes the (symbol, length) table.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(sym, len) in &self.entries {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len);
        }
    }

    /// Deserializes a table written by [`Codebook::serialize`];
    /// returns the codebook and the number of bytes consumed.
    pub fn deserialize(stream: &[u8]) -> Result<(Self, usize)> {
        let mut rd = ByteReader::new(stream);
        let n = rd.u32_le()? as usize;
        if n > rd.remaining() / 5 {
            return Err(Error::corrupt("huffman table truncated"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let sym = rd.u32_le()?;
            entries.push((sym, rd.u8()?));
        }
        let consumed = rd.pos();
        Ok((Self::from_lengths(entries)?, consumed))
    }
}

/// Computes Huffman code lengths from a histogram.
fn code_lengths(freqs: &[(u32, u64)]) -> Result<Vec<(u32, u8)>> {
    let active: Vec<(u32, u64)> = freqs.iter().copied().filter(|&(_, f)| f > 0).collect();
    match active.len() {
        0 => return Ok(Vec::new()),
        1 => return Ok(vec![(active[0].0, 1)]),
        _ => {}
    }
    // Standard heap-based tree construction over node indices.
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        id: u32,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on id for determinism.
            other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let n = active.len();
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap = BinaryHeap::with_capacity(n);
    for (i, &(_, f)) in active.iter().enumerate() {
        heap.push(Node { freq: f, id: i as u32 });
    }
    let mut next_id = n as u32;
    while heap.len() > 1 {
        let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else { break };
        parent[a.id as usize] = next_id;
        parent[b.id as usize] = next_id;
        heap.push(Node { freq: a.freq.saturating_add(b.freq), id: next_id });
        next_id += 1;
    }
    // Depth of each leaf = code length.
    let mut out = Vec::with_capacity(n);
    for (i, &(sym, _)) in active.iter().enumerate() {
        let mut d = 0u8;
        let mut cur = i as u32;
        while parent[cur as usize] != u32::MAX {
            cur = parent[cur as usize];
            d += 1;
        }
        if d == 0 || d > MAX_LEN {
            return Err(Error::corrupt("degenerate huffman tree"));
        }
        out.push((sym, d));
    }
    Ok(out)
}

/// Convenience: builds a histogram of `codes`.
///
/// A BTreeMap keeps the result sorted by symbol by construction — the
/// histogram feeds codebook construction, so its order must not depend
/// on hash iteration.
pub fn histogram(codes: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for &c in codes {
        *map.entry(c).or_insert(0u64) += 1;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codes: &[u32]) {
        let book = Codebook::from_frequencies(&histogram(codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in codes {
            assert_eq!(book.decode(&mut r).unwrap(), c);
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&[1, 2, 2, 3, 3, 3, 3, 7, 7, 1, 2]);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42; 100]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        // Strongly skewed: symbol i has frequency ~ 2^(16-i).
        let mut codes = Vec::new();
        for sym in 0u32..16 {
            for _ in 0..(1u32 << (16 - sym)) {
                codes.push(sym);
            }
        }
        roundtrip(&codes);
    }

    #[test]
    fn compresses_skewed_data() {
        // 90% zeros should code in well under 8 bits/symbol.
        let codes: Vec<u32> = (0..10_000).map(|i| if i % 10 == 0 { i as u32 % 7 + 1 } else { 0 }).collect();
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bits = w.bit_len();
        assert!(bits < 2 * codes.len() as u64, "got {} bits", bits);
    }

    #[test]
    fn table_serialization_roundtrip() {
        let codes = [5u32, 5, 5, 9, 9, 1000, 65535, 65535, 65535, 65535];
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut buf = Vec::new();
        book.serialize(&mut buf);
        let (book2, consumed) = Codebook::deserialize(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(book.entries(), book2.entries());
        // Cross encode/decode.
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            assert_eq!(book2.decode(&mut r).unwrap(), c);
        }
    }

    #[test]
    fn unknown_symbol_errors() {
        let book = Codebook::from_frequencies(&[(1, 5), (2, 5)]).unwrap();
        let mut w = BitWriter::new();
        assert!(book.encode(3, &mut w).is_err());
        assert!(book.encode(1000, &mut w).is_err());
    }

    #[test]
    fn corrupt_table_rejected() {
        assert!(Codebook::deserialize(&[1, 0, 0]).is_err());
        // Duplicate symbols.
        assert!(Codebook::from_lengths(vec![(1, 1), (1, 2)]).is_err());
        // Kraft violation: three 1-bit codes.
        assert!(Codebook::from_lengths(vec![(1, 1), (2, 1), (3, 1)]).is_err());
        // Zero length.
        assert!(Codebook::from_lengths(vec![(1, 0)]).is_err());
    }

    #[test]
    fn empty_codebook() {
        let book = Codebook::from_frequencies(&[]).unwrap();
        assert!(book.is_empty());
        let mut buf = Vec::new();
        book.serialize(&mut buf);
        let (book2, _) = Codebook::deserialize(&buf).unwrap();
        assert!(book2.is_empty());
    }

    #[test]
    fn sparse_symbols_use_binary_search_path() {
        // Symbols beyond the dense encoder cap (2^16) exercise the sorted
        // sparse fallback; mix in small symbols so both paths run.
        let codes = [
            3u32, 3, 3, 3, 70_000, 70_000, 1_000_000, 3, 70_000, u32::MAX - 1, 3,
        ];
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            assert_eq!(book.decode(&mut r).unwrap(), c);
        }
        // Absent symbols on both sides of the cap still error.
        let mut w = BitWriter::new();
        assert!(book.encode(4, &mut w).is_err());
        assert!(book.encode(70_001, &mut w).is_err());
        assert!(book.encode(u32::MAX, &mut w).is_err());
    }

    #[test]
    fn fast_encode_bit_identical_to_bitwise() {
        let codes: Vec<u32> = (0..4096u32).map(|i| (i * i % 97) % 31).collect();
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut fast).unwrap();
            book.encode_bitwise(c, &mut slow).unwrap();
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }

    #[test]
    fn long_codes_take_escape_path() {
        // Frequency ~2^(20-i) forces code lengths past DECODE_LUT_BITS for
        // the rare symbols, so decode must mix LUT hits and escapes.
        let mut codes = Vec::new();
        for sym in 0u32..20 {
            for _ in 0..(1u32 << (20 - sym)) {
                codes.push(sym);
            }
        }
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let max_len = book.entries().iter().map(|e| e.1).max().unwrap();
        assert!(
            max_len as u32 > DECODE_LUT_BITS,
            "distribution too flat to exercise the escape path (max len {max_len})"
        );
        // Interleave so escapes occur at varying bit offsets.
        let sample: Vec<u32> = (0..4096).map(|i| codes[(i * 2654435761usize) % codes.len()]).collect();
        let mut w = BitWriter::new();
        for &c in &sample {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut fast = BitReader::new(&bytes);
        let mut slow = BitReader::new(&bytes);
        for &c in &sample {
            assert_eq!(book.decode(&mut fast).unwrap(), c);
            assert_eq!(book.decode_bitwise(&mut slow).unwrap(), c);
        }
    }

    #[test]
    fn bulk_decode_matches_per_symbol_decode() {
        // Mix of very short (pair-packed), mid, and >LUT-window codes, with
        // odd counts so decode_into exercises the rem==1 tail guard.
        let mut codes = Vec::new();
        for sym in 0u32..18 {
            for _ in 0..(1u32 << (18 - sym)) {
                codes.push(sym);
            }
        }
        for take in [1usize, 2, 3, 101, 4096] {
            let sample: Vec<u32> =
                (0..take).map(|i| codes[(i * 2654435761usize) % codes.len()]).collect();
            let book = Codebook::from_frequencies(&histogram(&sample)).unwrap();
            let mut w = BitWriter::new();
            for &c in &sample {
                book.encode(c, &mut w).unwrap();
            }
            let bytes = w.into_bytes();
            let mut bulk = Vec::new();
            book.decode_into(&mut BitReader::new(&bytes), sample.len(), &mut bulk).unwrap();
            assert_eq!(bulk, sample, "bulk decode mismatch at n={take}");
            let mut r = BitReader::new(&bytes);
            for &c in &sample {
                assert_eq!(book.decode(&mut r).unwrap(), c);
            }
        }
    }

    #[test]
    fn truncated_stream_cannot_fabricate_symbols() {
        let codes: Vec<u32> = (0..512u32).map(|i| i % 7).collect();
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        // Decode all symbols, then confirm the reader refuses to produce
        // more from padding alone once real bits run out.
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            assert_eq!(book.decode(&mut r).unwrap(), c);
        }
        let leftover = bytes.len() as u64 * 8 - bits;
        let shortest = book.entries().iter().map(|e| e.1 as u64).min().unwrap();
        if leftover < shortest {
            assert!(book.decode(&mut r).is_err());
        }
    }

    #[test]
    fn optimality_vs_entropy() {
        // Average code length must be within 1 bit of the entropy bound.
        let codes: Vec<u32> = (0..4096u32).map(|i| (i * i % 37) % 11).collect();
        let hist = histogram(&codes);
        let total: u64 = hist.iter().map(|&(_, f)| f).sum();
        let entropy: f64 = hist
            .iter()
            .map(|&(_, f)| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let book = Codebook::from_frequencies(&hist).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let avg = w.bit_len() as f64 / codes.len() as f64;
        assert!(avg >= entropy - 1e-9, "avg {avg} below entropy {entropy}");
        assert!(avg <= entropy + 1.0, "avg {avg} vs entropy {entropy}");
    }
}
