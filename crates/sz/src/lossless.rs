//! LZSS byte-oriented lossless backend.
//!
//! The reference SZ pipeline finishes with a general lossless pass (Zstd).
//! This stands in for it: a 64 KiB sliding-window LZSS with a hash-chain
//! matcher. Tokens are a flag bit plus either a literal byte or a
//! (length, distance) pair; lengths 4..=258 and distances 1..=65535 encode
//! in 19 bits, so matches shorter than 4 bytes are never emitted.

use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::{ByteReader, Error, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;
/// Limit on hash-chain probes; bounds worst-case compress time.
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`; output starts with the original length (u64 LE).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() / 2 + 16); // lint: allow(alloc-arith) in-memory input, bounded
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && i - cand < WINDOW && probes < MAX_CHAIN {
                // Quick reject on the byte past the current best.
                if best_len == 0 || data.get(cand + best_len) == data.get(i + best_len) {
                    let max = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[cand];
                probes += 1;
            }
        }
        if best_len >= MIN_MATCH {
            w.write_bit(true);
            w.write_bits((best_len - MIN_MATCH) as u64, 8);
            w.write_bits(best_dist as u64, 16);
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash4(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            w.write_bit(false);
            w.write_bits(data[i] as u64, 8);
            if i + MIN_MATCH <= data.len() {
                let h = hash4(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    let mut out = Vec::with_capacity(data.len() / 2 + 16); // lint: allow(alloc-arith) in-memory input, bounded
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>> {
    let mut rd = ByteReader::new(stream);
    let n64 = rd.u64_le()?;
    // LZSS expands at most ~(MIN_MATCH + 255)x per encoded token, so a
    // genuine stream of this input size cannot exceed this many bytes;
    // an untrusted header claiming more is corrupt, and either way the
    // up-front reservation stays bounded by the input we actually hold.
    let max_out = (stream.len() as u64).saturating_mul(8 * 300);
    if n64 > max_out {
        return Err(Error::corrupt("lzss header claims implausible output size"));
    }
    let n = n64 as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let rem = rd.remaining();
    let body = rd.take(rem)?;
    let mut r = BitReader::new(body);
    while out.len() < n {
        if r.read_bit()? {
            let len = r.read_bits(8)? as usize + MIN_MATCH;
            let dist = r.read_bits(16)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(Error::corrupt("lzss match distance out of range"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            out.push(r.read_bits(8)? as u8);
        }
    }
    if out.len() != n {
        return Err(Error::corrupt("lzss output length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"abcd".iter().cycle().take(10_000).copied().collect();
        let clen = roundtrip(&data);
        assert!(clen < data.len() / 10, "clen={clen}");
    }

    #[test]
    fn runs_of_zeros() {
        let mut data = vec![0u8; 5000];
        data[100] = 7;
        data[4000] = 9;
        let clen = roundtrip(&data);
        assert!(clen < 300, "clen={clen}");
    }

    #[test]
    fn incompressible_data_still_roundtrips() {
        // Pseudorandom bytes: expect slight expansion but exact recovery.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let clen = roundtrip(&data);
        assert!(clen <= data.len() + data.len() / 7 + 16);
    }

    #[test]
    fn overlapping_match_semantics() {
        // "aaaaa..." forces dist=1 matches that overlap the output cursor.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[1, 2, 3]).is_err());
        // Claimed length 100 but no payload bits.
        let mut s = Vec::new();
        s.extend_from_slice(&100u64.to_le_bytes());
        assert!(decompress(&s).is_err());
        // A match referencing before the start of output.
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0, 8);
        w.write_bits(5, 16); // dist 5 with empty output
        let mut s = Vec::new();
        s.extend_from_slice(&10u64.to_le_bytes());
        s.extend_from_slice(&w.into_bytes());
        assert!(decompress(&s).is_err());
    }

    #[test]
    fn long_match_cap() {
        // A run much longer than MAX_MATCH exercises repeated max-length tokens.
        let data = vec![0xEEu8; MAX_MATCH * 5 + 13];
        roundtrip(&data);
    }
}
