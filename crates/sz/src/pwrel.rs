//! Point-wise relative error bounds via logarithmic transform.
//!
//! GPU-SZ only supports ABS mode; the paper (§IV-B-4, following Liang et
//! al. 2018) achieves PW_REL by compressing `ln|x|` with an absolute bound.
//! If `|ln x' - ln x| <= ln(1 + p)` then `|x' - x| <= p * |x|`, so the
//! transformed bound is `eb_abs = ln(1 + pw_rel)`.
//!
//! Signs are preserved in a raw bitmap; exact zeros and non-finite values
//! are flagged in a second bitmap and stored verbatim so the transform is
//! bijective on every input.

/// Result of the forward transform.
#[derive(Debug, Clone)]
pub struct PwRelTransformed {
    /// `ln|x|` for regular values; 0.0 placeholder for specials.
    pub log_data: Vec<f32>,
    /// Bit `i` set when `x_i < 0` (or negative zero).
    pub sign_bitmap: Vec<u8>,
    /// Bit `i` set when `x_i` is zero or non-finite; such values are in
    /// `specials` in order of appearance.
    pub special_bitmap: Vec<u8>,
    /// Verbatim special values.
    pub specials: Vec<f32>,
}

#[inline]
fn get_bit(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

#[inline]
fn set_bit(bitmap: &mut [u8], i: usize) {
    bitmap[i / 8] |= 1 << (i % 8);
}

/// The ABS bound on `ln|x|` equivalent to a PW_REL bound of `p`.
pub fn abs_bound_for(p: f64) -> f64 {
    (1.0 + p).ln()
}

/// Forward transform: `x -> ln|x|` with sign/special bookkeeping.
pub fn forward(data: &[f32]) -> PwRelTransformed {
    let nbytes = data.len().div_ceil(8);
    let mut t = PwRelTransformed {
        log_data: Vec::with_capacity(data.len()),
        sign_bitmap: vec![0; nbytes],
        special_bitmap: vec![0; nbytes],
        specials: Vec::new(),
    };
    for (i, &x) in data.iter().enumerate() {
        if x.is_sign_negative() {
            set_bit(&mut t.sign_bitmap, i);
        }
        if x == 0.0 || !x.is_finite() {
            set_bit(&mut t.special_bitmap, i);
            t.specials.push(x);
            t.log_data.push(0.0);
        } else {
            t.log_data.push(x.abs().ln());
        }
    }
    t
}

/// Inverse transform: reconstructs values from (possibly lossy) `log_data`.
///
/// Special positions take their verbatim value; others are
/// `sign * exp(log)`. Panics only if bitmaps are shorter than the data
/// (callers construct them with [`forward`] or validate stream lengths).
pub fn inverse(
    log_data: &[f32],
    sign_bitmap: &[u8],
    special_bitmap: &[u8],
    specials: &[f32],
) -> Vec<f32> {
    let mut next_special = 0usize;
    log_data
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            if get_bit(special_bitmap, i) {
                let v = specials.get(next_special).copied().unwrap_or(0.0);
                next_special += 1;
                v
            } else {
                let mag = (l as f64).exp() as f32;
                if get_bit(sign_bitmap, i) {
                    -mag
                } else {
                    mag
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_roundtrip_without_compression() {
        let data = vec![1.0f32, -2.5, 0.0, -0.0, f32::NAN, f32::INFINITY, 1e-30, -1e30];
        let t = forward(&data);
        let back = inverse(&t.log_data, &t.sign_bitmap, &t.special_bitmap, &t.specials);
        for (a, b) in data.iter().zip(&back) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else if a.is_infinite() {
                assert_eq!(a.to_bits(), b.to_bits());
            } else if *a == 0.0 {
                assert_eq!(a.to_bits(), b.to_bits(), "zero sign preserved");
            } else {
                // f32 stores ln|x|; for |ln x| ~ 69 the representation
                // error is ~69 * 2^-24 ≈ 4e-6 in log space.
                let rel = ((a - b) / a).abs();
                assert!(rel < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn abs_bound_guarantees_pw_rel() {
        // Perturb ln|x| by up to ln(1+p) and verify the point-wise bound.
        let p = 0.1f64;
        let eb = abs_bound_for(p);
        let data = vec![3.0f32, -77.7, 1e-3, 42.0, -1e5];
        let t = forward(&data);
        for noise_sign in [-1.0f64, 1.0] {
            let noisy: Vec<f32> =
                t.log_data.iter().map(|&l| (l as f64 + noise_sign * eb) as f32).collect();
            let back = inverse(&noisy, &t.sign_bitmap, &t.special_bitmap, &t.specials);
            for (a, b) in data.iter().zip(&back) {
                let rel = ((a - b) / a).abs() as f64;
                // f32 rounding leaves a hair above p.
                assert!(rel <= p * 1.0001, "rel error {rel} exceeds {p}");
            }
        }
    }

    #[test]
    fn special_bitmap_positions() {
        let data = vec![0.0f32, 1.0, f32::NAN, 2.0];
        let t = forward(&data);
        assert!(get_bit(&t.special_bitmap, 0));
        assert!(!get_bit(&t.special_bitmap, 1));
        assert!(get_bit(&t.special_bitmap, 2));
        assert_eq!(t.specials.len(), 2);
    }

    #[test]
    fn empty_input() {
        let t = forward(&[]);
        assert!(t.log_data.is_empty());
        assert!(inverse(&t.log_data, &t.sign_bitmap, &t.special_bitmap, &t.specials).is_empty());
    }
}
