//! Compressed stream container and the top-level (de)compression drivers.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "SZRS" | version u8 | mode u8 | entropy u8 | ndim u8
//! dims 3*u64 | block_size u32 | radius u32 | eb_abs f64 | eb_param f64
//! nblocks u64 | raw_body_len u64 | body_crc u32 | header_crc u32
//! body (LZSS-compressed when entropy == HuffmanLzss):
//!   per-block meta (tag u8 | n_outliers u32 | code_bytes u32 | coeffs 4*f32)
//!   huffman table | per-block code streams (byte-aligned) | outlier f32s
//!   [PW_REL only] sign bitmap | special bitmap | n_specials u32 | specials
//! ```
//!
//! Blocks compress and decompress in parallel (rayon); the Huffman table is
//! global (one histogram over all blocks), matching the reference SZ.

use crate::block::{self, BlockOutput, PredictorTag};
use crate::config::{Dims, EntropyBackend, ErrorBound, SzConfig};
use crate::huffman::Codebook;
use crate::{lossless, pwrel};
use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::crc::crc32;
use foresight_util::stats::summarize;
use foresight_util::{telemetry, ByteReader, Error, Result};
use rayon::prelude::*;

/// Stream magic tag identifying an SZ stream; exported so containers
/// and auto-detecting decoders match streams without private knowledge.
pub const MAGIC: &[u8; 4] = b"SZRS";
/// Version 2 added the trailing header CRC.
const VERSION: u8 = 2;
const META_BYTES: usize = 1 + 4 + 4 + 16;
/// Header bytes covered by the header CRC (everything before it).
const HDR_CRC_AT: usize = 4 + 1 + 1 + 1 + 1 + 24 + 4 + 4 + 8 + 8 + 8 + 8 + 4;
const HDR: usize = HDR_CRC_AT + 4;
/// Largest per-axis extent accepted from a header (2^40 values).
const MAX_EXTENT: u64 = 1 << 40;

/// Error-bound plan shared by the CPU driver and the traced device path:
/// the absolute bound actually applied, the user-facing parameter, the
/// header mode tag, and the PW_REL transform when active.
pub(crate) struct ModePlan {
    pub eb_abs: f64,
    pub eb_param: f64,
    pub tag: u8,
    pub pw: Option<pwrel::PwRelTransformed>,
}

impl ModePlan {
    /// The array the block kernels actually consume (log-space for PW_REL).
    pub fn working_data<'a>(&'a self, data: &'a [f32]) -> &'a [f32] {
        self.pw.as_ref().map_or(data, |t| &t.log_data[..])
    }
}

/// Validates configuration and data/dims agreement.
pub(crate) fn validate_input(data: &[f32], dims: Dims, cfg: &SzConfig) -> Result<()> {
    cfg.validate()?;
    if data.len() != dims.len() {
        return Err(Error::invalid(format!(
            "data length {} does not match dims {:?}",
            data.len(),
            dims
        )));
    }
    Ok(())
}

/// Resolves the error-bound mode against the data.
pub(crate) fn plan_mode(data: &[f32], cfg: &SzConfig) -> ModePlan {
    match cfg.mode {
        ErrorBound::Abs(eb) => ModePlan { eb_abs: eb, eb_param: eb, tag: 0, pw: None },
        ErrorBound::Rel(rel) => {
            let range = summarize(data).range();
            let eb = if range > 0.0 && range.is_finite() { rel * range } else { rel };
            ModePlan { eb_abs: eb, eb_param: rel, tag: 1, pw: None }
        }
        ErrorBound::PwRel(p) => ModePlan {
            eb_abs: pwrel::abs_bound_for(p),
            eb_param: p,
            tag: 2,
            pw: Some(pwrel::forward(data)),
        },
    }
}

/// Compresses `data` with the given configuration.
pub fn compress(data: &[f32], dims: Dims, cfg: &SzConfig) -> Result<Vec<u8>> {
    validate_input(data, dims, cfg)?;
    let plan = plan_mode(data, cfg);
    compress_inner(plan.working_data(data), dims, cfg, &plan)
}

fn compress_inner(data: &[f32], dims: Dims, cfg: &SzConfig, plan: &ModePlan) -> Result<Vec<u8>> {
    let ext = dims.extents();
    let blocks = block::partition(dims, cfg.block_size);

    // Pass 1: predict + quantize every block in parallel.
    let quantize = telemetry::span("sz.quantize");
    let outputs: Vec<BlockOutput> = blocks
        .par_iter()
        .map(|b| block::compress_block(data, ext, b, plan.eb_abs, cfg.radius, cfg.predictor))
        .collect();
    drop(quantize);

    let histogram = telemetry::span("sz.histogram");
    let book = global_codebook(&outputs, cfg.radius)?;
    drop(histogram);

    // Pass 2: entropy-encode each block.
    let encode = telemetry::span("sz.huffman_encode");
    let code_streams: Vec<Vec<u8>> = outputs
        .par_iter()
        .map(|o| encode_block_codes(&o.codes, &book))
        .collect::<Vec<Result<Vec<u8>>>>()
        .into_iter()
        .collect::<Result<Vec<Vec<u8>>>>()?;
    drop(encode);

    Ok(assemble(dims, cfg, plan, &outputs, &code_streams, &book))
}

/// Builds the global Huffman codebook over all block outputs.
///
/// Fold/reduce over per-chunk dense tables: quantization emits symbols in
/// `[0, 2*radius)` (0 = outlier), so a flat count array replaces hashing
/// on the hot path; anything outside that range (impossible today, cheap
/// to tolerate) spills to a sparse overflow map.
pub(crate) fn global_codebook(outputs: &[BlockOutput], radius: u32) -> Result<Codebook> {
    let hist = {
        // The overflow map must be a BTreeMap: its iteration order feeds
        // the histogram (and therefore the serialized codebook) directly.
        type Acc = (Vec<u64>, std::collections::BTreeMap<u32, u64>);
        let dense_len = 2 * radius as usize;
        let new_acc = || (vec![0u64; dense_len], std::collections::BTreeMap::new());
        let (dense, sparse) = outputs
            .par_iter()
            .fold(new_acc, |mut acc: Acc, o| {
                for &c in &o.codes {
                    if (c as usize) < dense_len {
                        acc.0[c as usize] += 1;
                    } else {
                        *acc.1.entry(c).or_insert(0) += 1;
                    }
                }
                acc
            })
            .reduce(new_acc, |mut a: Acc, b: Acc| {
                for (d, s) in a.0.iter_mut().zip(&b.0) {
                    *d += s;
                }
                for (k, v) in b.1 {
                    *a.1.entry(k).or_insert(0) += v;
                }
                a
            });
        let mut v: Vec<(u32, u64)> = dense
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(s, &f)| (s as u32, f))
            .collect();
        // Overflow symbols are all >= dense_len and BTreeMap iterates in
        // key order, so appending keeps the histogram sorted by symbol.
        v.extend(sparse);
        v
    };
    Codebook::from_frequencies(&hist)
}

/// Entropy-encodes one block's quantization codes against the global book.
pub(crate) fn encode_block_codes(codes: &[u32], book: &Codebook) -> Result<Vec<u8>> {
    let mut w = BitWriter::with_capacity(codes.len() / 2);
    for &c in codes {
        book.encode(c, &mut w)?;
    }
    Ok(w.into_bytes())
}

/// Assembles the container: body (per-block meta, Huffman table, code
/// streams, outliers, PW_REL epilogue), optional LZSS, and the header.
/// Shared verbatim by the CPU driver and the traced device path so both
/// produce bit-identical streams.
pub(crate) fn assemble(
    dims: Dims,
    cfg: &SzConfig,
    plan: &ModePlan,
    outputs: &[BlockOutput],
    code_streams: &[Vec<u8>],
    book: &Codebook,
) -> Vec<u8> {
    let ext = dims.extents();
    let mut body = Vec::new();
    for (o, cs) in outputs.iter().zip(code_streams) {
        body.push(o.tag.to_u8());
        body.extend_from_slice(&(o.outliers.len() as u32).to_le_bytes());
        body.extend_from_slice(&(cs.len() as u32).to_le_bytes());
        for c in o.coeffs {
            body.extend_from_slice(&c.to_le_bytes());
        }
    }
    book.serialize(&mut body);
    for cs in code_streams {
        body.extend_from_slice(cs);
    }
    for o in outputs {
        for &v in &o.outliers {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    if let Some(t) = &plan.pw {
        body.extend_from_slice(&t.sign_bitmap);
        body.extend_from_slice(&t.special_bitmap);
        body.extend_from_slice(&(t.specials.len() as u32).to_le_bytes());
        for &v in &t.specials {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }

    let raw_len = body.len() as u64;
    let crc = crc32(&body);
    let body = match cfg.entropy {
        EntropyBackend::Huffman => body,
        EntropyBackend::HuffmanLzss => {
            let _lzss = telemetry::span("sz.lzss");
            lossless::compress(&body)
        }
    };

    // Header.
    let mut out = Vec::with_capacity(body.len() + 96); // lint: allow(alloc-arith) — encoder-side capacity hint on an already-materialized body
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(plan.tag);
    out.push(match cfg.entropy {
        EntropyBackend::Huffman => 0,
        EntropyBackend::HuffmanLzss => 1,
    });
    out.push(dims.ndim());
    for e in ext {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    out.extend_from_slice(&(cfg.block_size as u32).to_le_bytes());
    out.extend_from_slice(&cfg.radius.to_le_bytes());
    out.extend_from_slice(&plan.eb_abs.to_le_bytes());
    out.extend_from_slice(&plan.eb_param.to_le_bytes());
    out.extend_from_slice(&(outputs.len() as u64).to_le_bytes());
    out.extend_from_slice(&raw_len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    // Header CRC: without it a bit flip in, say, the error bound would
    // decode to plausible-but-wrong data; with it any header mutation is
    // a hard `Corrupt` error.
    let hcrc = crc32(&out);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Header fields parsed from a compressed stream.
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Logical dimensions of the original array.
    pub dims: Dims,
    /// Error-bound mode with the user-facing parameter.
    pub mode: ErrorBound,
    /// The absolute bound applied to the (possibly log-transformed) data.
    pub eb_abs: f64,
    /// Block size used at compression time.
    pub block_size: usize,
    /// Quantization radius.
    pub radius: u32,
    /// Entropy backend.
    pub entropy: EntropyBackend,
    nblocks: u64,
    raw_len: u64,
    crc: u32,
    body_offset: usize,
}

/// Parses and validates a stream header.
///
/// Every read is bounds-checked ([`ByteReader`]) and the whole header is
/// CRC-protected, so truncated or mutated input can only produce
/// [`Error::Corrupt`] — never a panic and never a huge allocation driven
/// by attacker-controlled fields.
pub fn info(stream: &[u8]) -> Result<StreamInfo> {
    let mut r = ByteReader::new(stream);
    r.expect_magic(MAGIC, "an SZRS stream")?;
    let version = r.u8()?;
    if version != VERSION {
        return Err(Error::corrupt(format!("unsupported version {version}")));
    }
    let mode_tag = r.u8()?;
    let entropy = match r.u8()? {
        0 => EntropyBackend::Huffman,
        1 => EntropyBackend::HuffmanLzss,
        v => return Err(Error::corrupt(format!("unknown entropy backend {v}"))),
    };
    let ndim = r.u8()?;
    let nx = r.u64_le_capped(MAX_EXTENT, "x extent")?;
    let ny = r.u64_le_capped(MAX_EXTENT, "y extent")?;
    let nz = r.u64_le_capped(MAX_EXTENT, "z extent")?;
    let dims = match ndim {
        1 => Dims::D1(nx),
        2 => Dims::D2(nx, ny),
        3 => Dims::D3(nx, ny, nz),
        v => return Err(Error::corrupt(format!("bad ndim {v}"))),
    };
    dims.checked_len().ok_or_else(|| Error::corrupt("dims product overflows"))?;
    let block_size = r.u32_le()? as usize;
    let radius = r.u32_le()?;
    if block_size < 2 || radius < 2 {
        return Err(Error::corrupt("implausible block_size/radius"));
    }
    let eb_abs = r.f64_le()?;
    let eb_param = r.f64_le()?;
    if !(eb_abs.is_finite() && eb_abs > 0.0) {
        return Err(Error::corrupt("bad error bound in header"));
    }
    let mode = match mode_tag {
        0 => ErrorBound::Abs(eb_param),
        1 => ErrorBound::Rel(eb_param),
        2 => ErrorBound::PwRel(eb_param),
        v => return Err(Error::corrupt(format!("bad mode {v}"))),
    };
    let nblocks = r.u64_le()?;
    let raw_len = r.u64_le()?;
    let crc = r.u32_le()?;
    debug_assert_eq!(r.pos(), HDR_CRC_AT);
    let hcrc = r.u32_le()?;
    let hdr = stream.get(..HDR_CRC_AT).ok_or_else(|| Error::corrupt("truncated header"))?;
    if crc32(hdr) != hcrc {
        return Err(Error::corrupt("header CRC mismatch"));
    }
    Ok(StreamInfo {
        dims,
        mode,
        eb_abs,
        block_size,
        radius,
        entropy,
        nblocks,
        raw_len,
        crc,
        body_offset: HDR,
    })
}

/// Pointer wrapper for parallel scatter into disjoint block regions.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub *mut f32);
// SAFETY: each parallel task writes only the cells of its own block and
// blocks partition the array without overlap — exactly the claim the
// gpu-sim racecheck validates mechanically over the traced device path.
#[allow(unsafe_code)] // lint: allow(decode-panic) — trait impls, not decode logic
unsafe impl Send for SendPtr {}
#[allow(unsafe_code)]
unsafe impl Sync for SendPtr {}

/// Validates the body against the header (LZSS-expanding if needed) and
/// returns it; `scratch` owns the expanded bytes when LZSS was used.
pub(crate) fn checked_body<'a>(
    inf: &StreamInfo,
    stream: &'a [u8],
    scratch: &'a mut Vec<u8>,
) -> Result<&'a [u8]> {
    let body_raw =
        stream.get(inf.body_offset..).ok_or_else(|| Error::corrupt("truncated body"))?;
    let body: &[u8] = match inf.entropy {
        EntropyBackend::Huffman => body_raw,
        EntropyBackend::HuffmanLzss => {
            let _lzss = telemetry::span("sz.lzss_decode");
            *scratch = lossless::decompress(body_raw)?;
            scratch
        }
    };
    if body.len() as u64 != inf.raw_len {
        return Err(Error::corrupt(format!(
            "body length {} does not match header {}",
            body.len(),
            inf.raw_len
        )));
    }
    if crc32(body) != inf.crc {
        return Err(Error::corrupt("body CRC mismatch"));
    }
    Ok(body)
}

/// Per-block meta parsed from the body.
pub(crate) struct Meta {
    pub tag: PredictorTag,
    pub n_out: usize,
    pub code_bytes: usize,
    pub coeffs: [f32; 4],
}

/// Everything needed to decode blocks independently: the block list,
/// per-block metas, the Huffman book, and byte offsets into the body.
pub(crate) struct DecodePlan {
    pub blocks: Vec<block::Block>,
    pub metas: Vec<Meta>,
    pub book: Codebook,
    pub code_offsets: Vec<usize>,
    pub outlier_offsets: Vec<usize>,
    pub outliers_start: usize,
    pub outliers_end: usize,
    pub n_values: usize,
}

impl DecodePlan {
    /// Body byte range of block `bi`'s Huffman code stream.
    pub fn code_range(&self, bi: usize) -> (usize, usize) {
        (self.code_offsets[bi], self.code_offsets[bi] + self.metas[bi].code_bytes)
    }

    /// Body byte range of block `bi`'s outlier array.
    pub fn outlier_range(&self, bi: usize) -> (usize, usize) {
        let start = self.outliers_start + self.outlier_offsets[bi] * 4;
        (start, start + self.metas[bi].n_out * 4)
    }
}

/// Parses per-block metadata and the Huffman table, cross-checking every
/// size against the body before any dims-driven allocation.
pub(crate) fn prepare_decode(inf: &StreamInfo, body: &[u8]) -> Result<DecodePlan> {
    let dims = inf.dims;
    let ext = dims.extents();
    let n_values =
        dims.checked_len().ok_or_else(|| Error::corrupt("dims product overflows"))?;
    // Arithmetic cross-checks BEFORE any dims-driven allocation: the
    // block count implied by dims must match the header's, and the meta
    // region it implies must fit the body we actually hold. Only then is
    // it safe to materialize the block list.
    let (bx, by, bz): (u128, u128, u128) = match dims {
        Dims::D1(_) => ((inf.block_size as u128).pow(3), 1, 1),
        Dims::D2(..) => (inf.block_size as u128, inf.block_size as u128, 1),
        Dims::D3(..) => (
            inf.block_size as u128,
            inf.block_size as u128,
            inf.block_size as u128,
        ),
    };
    let expected_blocks = (ext[0] as u128).div_ceil(bx)
        * (ext[1] as u128).div_ceil(by)
        * (ext[2] as u128).div_ceil(bz);
    if expected_blocks != inf.nblocks as u128 {
        return Err(Error::corrupt("block count mismatch"));
    }
    if inf
        .nblocks
        .checked_mul(META_BYTES as u64)
        .map(|m| m > body.len() as u64)
        .unwrap_or(true)
    {
        return Err(Error::corrupt("truncated block meta"));
    }
    let blocks = block::partition(dims, inf.block_size);
    debug_assert_eq!(blocks.len() as u128, expected_blocks);

    // Per-block meta.
    let meta_len = blocks.len() * META_BYTES;
    let meta_bytes =
        body.get(..meta_len).ok_or_else(|| Error::corrupt("truncated block meta"))?;
    let mut metas = Vec::with_capacity(blocks.len());
    let mut mr = ByteReader::new(meta_bytes);
    for _ in 0..blocks.len() {
        let tag = PredictorTag::from_u8(mr.u8()?)
            .ok_or_else(|| Error::corrupt("bad predictor tag"))?;
        let n_out = mr.u32_le()? as usize;
        let code_bytes = mr.u32_le()? as usize;
        let mut coeffs = [0.0f32; 4];
        for c in coeffs.iter_mut() {
            *c = mr.f32_le()?;
        }
        metas.push(Meta { tag, n_out, code_bytes, coeffs });
    }

    // Huffman table.
    let table_bytes =
        body.get(meta_len..).ok_or_else(|| Error::corrupt("truncated Huffman table"))?;
    let (book, table_len) = Codebook::deserialize(table_bytes)?;
    let codes_start = meta_len + table_len;

    // Slice boundaries for code streams and outliers; sum in u64 so a
    // forged meta table cannot overflow the offsets.
    let total_code_bytes: u64 = metas.iter().map(|m| m.code_bytes as u64).sum();
    let total_outliers: u64 = metas.iter().map(|m| m.n_out as u64).sum();
    let outliers_start_64 = codes_start as u64 + total_code_bytes;
    let outliers_end_64 = outliers_start_64 + total_outliers * 4;
    if outliers_end_64 > body.len() as u64 {
        return Err(Error::corrupt("truncated payload"));
    }
    // Huffman spends at least one bit per value, so a body with
    // `total_code_bytes` of codes can decode at most 8x that many
    // values — reject before allocating the output array.
    if n_values as u64 > total_code_bytes.saturating_mul(8) && n_values > 0 {
        return Err(Error::corrupt("dims imply more values than the code streams hold"));
    }
    let mut code_offsets = Vec::with_capacity(blocks.len());
    let mut outlier_offsets = Vec::with_capacity(blocks.len());
    let (mut co, mut oo) = (codes_start, 0usize);
    for m in &metas {
        code_offsets.push(co);
        outlier_offsets.push(oo);
        co += m.code_bytes;
        oo += m.n_out;
    }
    Ok(DecodePlan {
        blocks,
        metas,
        book,
        code_offsets,
        outlier_offsets,
        outliers_start: outliers_start_64 as usize,
        outliers_end: outliers_end_64 as usize,
        n_values,
    })
}

/// Entropy-decodes and dequantizes one block into `out` (the full array;
/// only the block's own cells are written).
pub(crate) fn decode_block_into(
    inf: &StreamInfo,
    plan: &DecodePlan,
    body: &[u8],
    bi: usize,
    out: &mut [f32],
) -> Result<()> {
    let m = &plan.metas[bi];
    let b = &plan.blocks[bi];
    let (cs_start, cs_end) = plan.code_range(bi);
    let cs = body.get(cs_start..cs_end).ok_or_else(|| Error::corrupt("truncated codes"))?;
    let mut r = BitReader::new(cs);
    let mut codes = Vec::new();
    plan.book.decode_into(&mut r, b.cells(), &mut codes)?;
    let n_zero = codes.iter().filter(|&&c| c == 0).count();
    if n_zero != m.n_out {
        return Err(Error::corrupt("outlier count mismatch"));
    }
    let (o_start, o_end) = plan.outlier_range(bi);
    let outlier_bytes =
        body.get(o_start..o_end).ok_or_else(|| Error::corrupt("truncated outliers"))?;
    let outliers: Vec<f32> = outlier_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    block::decompress_block(
        &codes,
        &outliers,
        m.tag,
        m.coeffs,
        inf.dims.extents(),
        b,
        inf.eb_abs,
        inf.radius,
        out,
    );
    Ok(())
}

/// Undoes the PW_REL log transform when active (bounds-checked reads).
pub(crate) fn finish_pwrel(
    inf: &StreamInfo,
    plan: &DecodePlan,
    body: &[u8],
    out: Vec<f32>,
) -> Result<Vec<f32>> {
    let ErrorBound::PwRel(_) = inf.mode else { return Ok(out) };
    let nbytes = plan.n_values.div_ceil(8);
    let tail =
        body.get(plan.outliers_end..).ok_or_else(|| Error::corrupt("truncated PW_REL tail"))?;
    let mut er = ByteReader::new(tail);
    let sign = er.take(nbytes)?;
    let special = er.take(nbytes)?;
    let nspec = er.u32_le()? as usize;
    let spec_bytes = er.take(
        nspec
            .checked_mul(4)
            .ok_or_else(|| Error::corrupt("PW_REL special count overflows"))?,
    )?;
    let specials: Vec<f32> = spec_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(pwrel::inverse(&out, sign, special, &specials))
}

/// Decompresses a stream, returning the data and its dimensions.
pub fn decompress(stream: &[u8]) -> Result<(Vec<f32>, Dims)> {
    let inf = info(stream)?;
    let mut scratch = Vec::new();
    let body = checked_body(&inf, stream, &mut scratch)?;
    let plan = prepare_decode(&inf, body)?;

    let mut out = vec![0.0f32; plan.n_values];
    let ptr = SendPtr(out.as_mut_ptr());
    let out_len = out.len();
    // One span covers entropy decode + dequantize: the two are fused in
    // the per-block loop, matching the reference SZ decoder's structure.
    let decode = telemetry::span("sz.huffman_decode");
    plan.blocks
        .par_iter()
        .enumerate()
        .try_for_each(|(bi, _)| -> Result<()> {
            let p = ptr;
            // SAFETY: blocks are disjoint (see SendPtr) and the slice spans
            // the whole array.
            #[allow(unsafe_code)]
            let slice = unsafe { std::slice::from_raw_parts_mut(p.0, out_len) };
            decode_block_into(&inf, &plan, body, bi, slice)
        })?;
    drop(decode);

    let out = finish_pwrel(&inf, &plan, body, out)?;
    Ok((out, inf.dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorKind;

    fn sample_field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f32;
                (t * 0.01).sin() * 100.0 + (t * 0.001).cos() * 1000.0
            })
            .collect()
    }

    fn check_bound(orig: &[f32], rec: &[f32], eb: f64) {
        for (a, b) in orig.iter().zip(rec) {
            assert!((*a as f64 - *b as f64).abs() <= eb, "{a} vs {b}");
        }
    }

    #[test]
    fn abs_roundtrip_1d() {
        let data = sample_field(10_000);
        let cfg = SzConfig::abs(0.5);
        let stream = compress(&data, Dims::D1(10_000), &cfg).unwrap();
        let (rec, dims) = decompress(&stream).unwrap();
        assert_eq!(dims, Dims::D1(10_000));
        check_bound(&data, &rec, 0.5);
        assert!(stream.len() < data.len() * 4, "no compression achieved");
    }

    #[test]
    fn abs_roundtrip_3d() {
        let data = sample_field(32 * 32 * 32);
        let cfg = SzConfig::abs(0.1);
        let stream = compress(&data, Dims::D3(32, 32, 32), &cfg).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        check_bound(&data, &rec, 0.1);
    }

    #[test]
    fn rel_mode_scales_with_range() {
        let data = sample_field(4096);
        let range = foresight_util::stats::summarize(&data).range();
        let cfg = SzConfig::rel(1e-3);
        let stream = compress(&data, Dims::D1(4096), &cfg).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        check_bound(&data, &rec, 1e-3 * range + 1e-9);
    }

    #[test]
    fn pwrel_mode_bounds_relative_error() {
        let data: Vec<f32> = (0..5000)
            .map(|i| {
                let t = i as f32 * 0.01;
                t.sin() * 10f32.powf((i % 7) as f32 - 3.0) * if i % 3 == 0 { -1.0 } else { 1.0 }
            })
            .collect();
        let p = 0.05;
        let cfg = SzConfig::pw_rel(p);
        let stream = compress(&data, Dims::D1(5000), &cfg).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            } else {
                let rel = ((a - b) / a).abs();
                assert!(rel <= p as f32 * 1.001, "{a} vs {b} rel={rel}");
            }
        }
    }

    #[test]
    fn lzss_backend_roundtrips_and_shrinks_smooth_data() {
        let data = vec![7.25f32; 8192];
        let mut cfg = SzConfig::abs(1e-4);
        cfg.entropy = EntropyBackend::HuffmanLzss;
        let stream = compress(&data, Dims::D1(8192), &cfg).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        check_bound(&data, &rec, 1e-4);
        assert!(stream.len() < 2048, "len={}", stream.len());
    }

    #[test]
    fn all_predictors_roundtrip() {
        let data = sample_field(17 * 13 * 9);
        for pred in [PredictorKind::Lorenzo, PredictorKind::Regression, PredictorKind::Adaptive] {
            let cfg = SzConfig { predictor: pred, ..SzConfig::abs(0.2) };
            let stream = compress(&data, Dims::D3(17, 13, 9), &cfg).unwrap();
            let (rec, _) = decompress(&stream).unwrap();
            check_bound(&data, &rec, 0.2);
        }
    }

    #[test]
    fn corrupted_stream_detected() {
        let data = sample_field(1024);
        let stream = compress(&data, Dims::D1(1024), &SzConfig::abs(0.1)).unwrap();
        // Flip a payload byte: CRC must catch it.
        let mut bad = stream.clone();
        let n = bad.len();
        bad[n - 10] ^= 0xff;
        assert!(decompress(&bad).is_err());
        // Truncate: must error, not panic.
        assert!(decompress(&stream[..stream.len() / 2]).is_err());
        assert!(decompress(&stream[..10]).is_err());
        // Wrong magic.
        let mut bad = stream;
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn empty_input() {
        let stream = compress(&[], Dims::D1(0), &SzConfig::abs(0.1)).unwrap();
        let (rec, dims) = decompress(&stream).unwrap();
        assert!(rec.is_empty());
        assert_eq!(dims, Dims::D1(0));
    }

    #[test]
    fn length_mismatch_rejected() {
        let data = vec![0.0f32; 10];
        assert!(compress(&data, Dims::D1(11), &SzConfig::abs(0.1)).is_err());
    }

    #[test]
    fn info_reports_header() {
        let data = sample_field(2048);
        let cfg = SzConfig::abs(0.25);
        let stream = compress(&data, Dims::D1(2048), &cfg).unwrap();
        let inf = info(&stream).unwrap();
        assert_eq!(inf.dims, Dims::D1(2048));
        assert_eq!(inf.eb_abs, 0.25);
        assert_eq!(inf.block_size, cfg.block_size);
    }

    #[test]
    fn constant_field_compresses_extremely_well() {
        let data = vec![42.0f32; 64 * 64 * 64];
        // Huffman alone floors at ~1 bit/value (ratio 32); the LZSS stage
        // collapses the constant code stream far further.
        let stream = compress(&data, Dims::D3(64, 64, 64), &SzConfig::abs(1e-3)).unwrap();
        let ratio = (data.len() * 4) as f64 / stream.len() as f64;
        assert!(ratio > 25.0, "huffman-only ratio {ratio}");
        let mut cfg = SzConfig::abs(1e-3);
        cfg.entropy = EntropyBackend::HuffmanLzss;
        let stream = compress(&data, Dims::D3(64, 64, 64), &cfg).unwrap();
        let ratio = (data.len() * 4) as f64 / stream.len() as f64;
        assert!(ratio > 200.0, "lzss ratio {ratio}");
        let (rec, _) = decompress(&stream).unwrap();
        check_bound(&data, &rec, 1e-3);
    }
}
