//! Property tests for the traced GPU execution path: attaching (or not
//! attaching) the sanitizer must never change the bytes a codec produces.
//! `gpu_exec::compress_on` promises exactly the stream of the host-side
//! `compress`; these check that promise for arbitrary inputs, with the
//! checker off, on, and across the decode roundtrip — and that the shipped
//! kernels stay finding-free the whole time.

use gpu_sim::{Device, GpuSpec, SanitizerConfig};
use lossy_sz::{compress, decompress, gpu_exec, Dims, ErrorBound, PredictorKind, SzConfig};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![-1e6f32..1e6f32, -1.0f32..1.0f32, Just(0.0f32), -1e-6f32..1e-6f32]
}

fn config(eb_exp: i32, pred_sel: u8) -> SzConfig {
    SzConfig {
        mode: ErrorBound::Abs(10f64.powi(eb_exp)),
        predictor: match pred_sel % 3 {
            0 => PredictorKind::Lorenzo,
            1 => PredictorKind::Regression,
            _ => PredictorKind::Adaptive,
        },
        ..SzConfig::abs(1.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The traced device path is byte-identical to the host path whether
    /// the sanitizer is off, memcheck-only, or fully on — and the shipped
    /// kernels produce zero findings and leave no allocations behind.
    #[test]
    fn traced_path_is_byte_identical_and_clean(
        data in prop::collection::vec(finite_f32(), 1..1500),
        eb_exp in -4i32..2,
        pred_sel in 0u8..3,
        san_sel in 0u8..3,
    ) {
        let cfg = config(eb_exp, pred_sel);
        let dims = Dims::D1(data.len());
        let host = compress(&data, dims, &cfg).unwrap();

        let mut dev = Device::new(GpuSpec::tesla_v100());
        match san_sel % 3 {
            0 => {} // sanitizer off
            1 => dev = dev.with_sanitizer(SanitizerConfig::memcheck()),
            _ => dev = dev.with_sanitizer(SanitizerConfig::full()),
        }
        let (gpu_stream, _) = gpu_exec::compress_on(&mut dev, &data, dims, &cfg).unwrap();
        prop_assert_eq!(&gpu_stream, &host, "compress_on must match host bytes");

        let (host_vals, host_dims) = decompress(&host).unwrap();
        let (gpu_vals, gpu_dims, _) = gpu_exec::decompress_on(&mut dev, &gpu_stream).unwrap();
        prop_assert_eq!(gpu_dims, host_dims);
        prop_assert_eq!(gpu_vals.len(), host_vals.len());
        for (a, b) in gpu_vals.iter().zip(&host_vals) {
            prop_assert!(a.to_bits() == b.to_bits(), "reconstruction differs: {a} vs {b}");
        }

        prop_assert_eq!(dev.allocated_bytes(), 0, "leak: {:?}", dev.leak_report());
        if let Some(report) = dev.sanitizer_report() {
            prop_assert!(report.is_clean(), "findings: {:?}", report.lines());
        } else {
            prop_assert!(!dev.sanitizer_active());
        }
    }
}
