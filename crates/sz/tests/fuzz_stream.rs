//! Mutation fuzzing of the SZ stream decoder.
//!
//! Start from valid streams, then truncate, bit-flip, splice, and rewrite
//! windows of bytes. The decoder must never panic, never allocate
//! unboundedly, and must fail closed: the header and body are both
//! CRC-protected, so every mutation that changes any byte must surface as
//! `Err`, never as silently wrong output.

use lossy_sz::{compress, decompress, Dims, EntropyBackend, SzConfig};
use proptest::prelude::*;

/// A modest valid corpus covering both entropy backends and all bound modes.
fn make_stream(variant: u8, seed: u32) -> Vec<u8> {
    let n = 512 + (seed as usize % 256);
    let data: Vec<f32> = (0..n)
        .map(|i| ((i as u32).wrapping_mul(seed | 1) as f32 * 1e-7).sin() * 40.0 + 2.0)
        .collect();
    let (dims, data) = match variant % 3 {
        0 => (Dims::D1(n), data),
        1 => (Dims::D2(16, 16), data[..256].to_vec()),
        _ => (Dims::D3(8, 8, 8), data[..512].to_vec()),
    };
    let mut cfg = match variant % 4 {
        0 => SzConfig::abs(1e-2),
        1 => SzConfig::rel(1e-3),
        2 => SzConfig::pw_rel(1e-2),
        _ => SzConfig::abs(1e-4),
    };
    if variant % 2 == 1 {
        cfg.entropy = EntropyBackend::HuffmanLzss;
    }
    cfg.block_size = 8;
    compress(&data, dims, &cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a valid stream must be rejected.
    #[test]
    fn truncation_always_errors(variant in 0u8..12, seed in any::<u32>(), cut_sel in any::<u32>()) {
        let stream = make_stream(variant, seed);
        let cut = cut_sel as usize % stream.len();
        prop_assert!(decompress(&stream[..cut]).is_err());
    }

    /// Every single-bit flip lands in a CRC-covered region, so decoding
    /// must error — never panic, never return altered data as valid.
    #[test]
    fn bit_flip_always_errors(variant in 0u8..12, seed in any::<u32>(), flip_sel in any::<u32>()) {
        let stream = make_stream(variant, seed);
        let mut bad = stream.clone();
        let bit = flip_sel as usize % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decompress(&bad).is_err(), "flip at bit {} accepted", bit);
    }

    /// Overwriting a window with arbitrary bytes must not panic; if the
    /// window had any effect the CRCs reject it.
    #[test]
    fn window_rewrite_never_panics(
        variant in 0u8..12,
        seed in any::<u32>(),
        start_sel in any::<u32>(),
        junk in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let stream = make_stream(variant, seed);
        let mut bad = stream.clone();
        let start = start_sel as usize % bad.len();
        let end = (start + junk.len()).min(bad.len());
        bad[start..end].copy_from_slice(&junk[..end - start]);
        if bad == stream {
            prop_assert!(decompress(&bad).is_ok());
        } else {
            prop_assert!(decompress(&bad).is_err());
        }
    }

    /// Splicing the header of one valid stream onto the body of another
    /// (and arbitrary cut-and-join points) must fail closed.
    #[test]
    fn splice_never_panics(
        va in 0u8..12, vb in 0u8..12,
        sa in any::<u32>(), sb in any::<u32>(),
        cut_sel in any::<u32>(),
    ) {
        let a = make_stream(va, sa);
        let b = make_stream(vb, sb);
        let cut = cut_sel as usize % a.len();
        let mut spliced = a[..cut].to_vec();
        spliced.extend_from_slice(&b[cut.min(b.len())..]);
        if spliced != a && spliced != b {
            prop_assert!(decompress(&spliced).is_err());
        }
    }

    /// Raw garbage of any size must be rejected without panicking.
    #[test]
    fn garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(decompress(&junk).is_err());
    }
}
