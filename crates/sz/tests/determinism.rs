//! Regression tests for the determinism fixes flagged by
//! `foresight-analyze` (det-hash-iter): `histogram` and the overflow map
//! inside `global_codebook` used to accumulate into a HashMap and rely on
//! a post-hoc sort for stable output. Both now use BTreeMap so iteration
//! order is sorted by construction. These tests pin the observable
//! guarantees: histograms are symbol-sorted and permutation-invariant,
//! and the full compressed stream is byte-identical across repeated runs
//! of the rayon-parallel pipeline.

use lossy_sz::huffman::histogram;
use lossy_sz::{compress, Dims, ErrorBound, PredictorKind, SzConfig};

/// Deterministic xorshift so the test needs no RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn histogram_is_sorted_by_symbol() {
    let mut s = 0x9e37_79b9u64;
    let codes: Vec<u32> = (0..4096).map(|_| (xorshift(&mut s) % 700) as u32).collect();
    let hist = histogram(&codes);
    assert!(
        hist.windows(2).all(|w| w[0].0 < w[1].0),
        "histogram must be strictly sorted by symbol"
    );
    let total: u64 = hist.iter().map(|&(_, f)| f).sum();
    assert_eq!(total, codes.len() as u64);
}

#[test]
fn histogram_is_permutation_invariant() {
    let mut s = 0xdead_beefu64;
    let mut codes: Vec<u32> = (0..2048).map(|_| (xorshift(&mut s) % 300) as u32).collect();
    let base = histogram(&codes);
    // A couple of deterministic shuffles: reverse and an even/odd split.
    codes.reverse();
    assert_eq!(histogram(&codes), base);
    let interleaved: Vec<u32> = codes
        .iter()
        .step_by(2)
        .chain(codes.iter().skip(1).step_by(2))
        .copied()
        .collect();
    assert_eq!(histogram(&interleaved), base);
}

#[test]
fn compressed_stream_is_byte_identical_across_runs() {
    // End-to-end determinism: the parallel fold/reduce inside
    // global_codebook must not leak scheduling order into the bytes.
    let mut s = 0x1234_5678u64;
    let data: Vec<f32> = (0..20_000)
        .map(|i| (i as f32 * 0.01).sin() + (xorshift(&mut s) % 1000) as f32 * 1e-4)
        .collect();
    let dims = Dims::D1(data.len());
    for predictor in [PredictorKind::Lorenzo, PredictorKind::Regression] {
        let cfg = SzConfig {
            mode: ErrorBound::Abs(1e-3),
            predictor,
            ..SzConfig::abs(1.0)
        };
        let first = compress(&data, dims, &cfg).expect("compress");
        for _ in 0..3 {
            let again = compress(&data, dims, &cfg).expect("compress");
            assert_eq!(first, again, "stream bytes must be run-invariant");
        }
    }
}
