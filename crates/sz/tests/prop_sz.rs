//! Property tests: the SZ compressor's error-bound guarantee must hold for
//! arbitrary finite inputs, bounds, and configurations.

use lossy_sz::{compress, decompress, Dims, EntropyBackend, ErrorBound, PredictorKind, SzConfig};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1e6f32..1e6f32,
        -1.0f32..1.0f32,
        Just(0.0f32),
        Just(-0.0f32),
        -1e-6f32..1e-6f32,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ABS mode: every reconstructed value within eb of the original.
    #[test]
    fn abs_bound_holds(
        data in prop::collection::vec(finite_f32(), 1..2000),
        eb_exp in -6i32..3,
        pred_sel in 0u8..3,
        lzss in any::<bool>(),
    ) {
        let eb = 10f64.powi(eb_exp);
        let cfg = SzConfig {
            mode: ErrorBound::Abs(eb),
            predictor: match pred_sel {
                0 => PredictorKind::Lorenzo,
                1 => PredictorKind::Regression,
                _ => PredictorKind::Adaptive,
            },
            block_size: 8,
            entropy: if lzss { EntropyBackend::HuffmanLzss } else { EntropyBackend::Huffman },
            radius: 1024,
        };
        let n = data.len();
        let stream = compress(&data, Dims::D1(n), &cfg).unwrap();
        let (rec, dims) = decompress(&stream).unwrap();
        prop_assert_eq!(dims, Dims::D1(n));
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb, "{} vs {} (eb {})", a, b, eb);
        }
    }

    /// 3-D arrays with awkward (non-multiple-of-block) extents roundtrip.
    #[test]
    fn abs_bound_holds_3d(
        nx in 1usize..12, ny in 1usize..12, nz in 1usize..12,
        seed in any::<u32>(),
    ) {
        let n = nx * ny * nz;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let t = (i as u32).wrapping_mul(seed | 1) as f32;
                (t * 1e-5).sin() * 100.0
            })
            .collect();
        let cfg = SzConfig { block_size: 4, ..SzConfig::abs(0.01) };
        let stream = compress(&data, Dims::D3(nx, ny, nz), &cfg).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= 0.01);
        }
    }

    /// PW_REL mode: relative error bounded for arbitrary signed data.
    #[test]
    fn pwrel_bound_holds(
        data in prop::collection::vec(prop_oneof![-1e8f32..1e8f32, Just(0.0f32)], 1..500),
        p_pct in 1u32..30,
    ) {
        let p = p_pct as f64 / 100.0;
        let stream = compress(&data, Dims::D1(data.len()), &SzConfig::pw_rel(p)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            } else {
                let rel = ((*a as f64 - *b as f64) / *a as f64).abs();
                prop_assert!(rel <= p * 1.001, "{} vs {} rel {}", a, b, rel);
            }
        }
    }

    /// Non-finite values always survive exactly.
    #[test]
    fn non_finite_exact(pos in 0usize..100, kind in 0u8..3) {
        let mut data = vec![1.5f32; 100];
        data[pos] = match kind {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let stream = compress(&data, Dims::D1(100), &SzConfig::abs(0.1)).unwrap();
        let (rec, _) = decompress(&stream).unwrap();
        if kind == 0 {
            prop_assert!(rec[pos].is_nan());
        } else {
            prop_assert_eq!(rec[pos].to_bits(), data[pos].to_bits());
        }
    }

    /// Truncating a stream anywhere must yield an error, never a panic.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let data: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).cos()).collect();
        let stream = compress(&data, Dims::D1(500), &SzConfig::abs(0.01)).unwrap();
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        if cut < stream.len() {
            // Any outcome but a panic is acceptable; a correct result is
            // impossible since bytes are missing.
            prop_assert!(decompress(&stream[..cut]).is_err());
        }
    }
}
