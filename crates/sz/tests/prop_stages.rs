//! Property tests for the SZ pipeline's individual stages: Huffman
//! coding, the LZSS backend, and the dual-quantization kernel.

use lossy_sz::huffman::{histogram, Codebook};
use lossy_sz::{compress_dualquant, decompress_dualquant, lossless, Dims};
use foresight_util::bits::{BitReader, BitWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Huffman roundtrips arbitrary symbol streams (bounded alphabet).
    #[test]
    fn huffman_roundtrip(codes in prop::collection::vec(0u32..5000, 1..3000)) {
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            prop_assert_eq!(book.decode(&mut r).unwrap(), c);
        }
    }

    /// A serialized codebook decodes streams encoded by the original.
    #[test]
    fn huffman_table_portability(codes in prop::collection::vec(0u32..300, 1..500)) {
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let mut table = Vec::new();
        book.serialize(&mut table);
        let (book2, _) = Codebook::deserialize(&table).unwrap();
        let mut w = BitWriter::new();
        for &c in &codes {
            book.encode(c, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &c in &codes {
            prop_assert_eq!(book2.decode(&mut r).unwrap(), c);
        }
    }

    /// The packed multi-bit encoder emits bit-identical streams to the
    /// original bit-at-a-time oracle, and both the LUT decoder and the
    /// bulk multi-symbol decoder reproduce what the oracle decodes.
    #[test]
    fn fast_entropy_paths_match_bitwise_oracle(
        codes in prop::collection::vec(0u32..5000, 1..3000),
    ) {
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let (mut fast, mut oracle) = (BitWriter::new(), BitWriter::new());
        for &c in &codes {
            book.encode(c, &mut fast).unwrap();
            book.encode_bitwise(c, &mut oracle).unwrap();
        }
        let bytes = fast.into_bytes();
        prop_assert_eq!(&bytes, &oracle.into_bytes(), "encoders must be bit-identical");
        let mut bulk = Vec::new();
        book.decode_into(&mut BitReader::new(&bytes), codes.len(), &mut bulk).unwrap();
        prop_assert_eq!(&bulk, &codes);
        let (mut lut_r, mut oracle_r) = (BitReader::new(&bytes), BitReader::new(&bytes));
        for &c in &codes {
            prop_assert_eq!(book.decode(&mut lut_r).unwrap(), c);
            prop_assert_eq!(book.decode_bitwise(&mut oracle_r).unwrap(), c);
        }
    }

    /// Same oracle agreement on narrow, heavily repeated alphabets, where
    /// codes are short enough that every LUT probe packs several symbols.
    #[test]
    fn fast_entropy_paths_match_oracle_short_codes(
        codes in prop::collection::vec(0u32..6, 1..4000),
    ) {
        let book = Codebook::from_frequencies(&histogram(&codes)).unwrap();
        let (mut fast, mut oracle) = (BitWriter::new(), BitWriter::new());
        for &c in &codes {
            book.encode(c, &mut fast).unwrap();
            book.encode_bitwise(c, &mut oracle).unwrap();
        }
        let bytes = fast.into_bytes();
        prop_assert_eq!(&bytes, &oracle.into_bytes(), "encoders must be bit-identical");
        let mut bulk = Vec::new();
        book.decode_into(&mut BitReader::new(&bytes), codes.len(), &mut bulk).unwrap();
        prop_assert_eq!(&bulk, &codes);
    }

    /// LZSS roundtrips arbitrary byte streams exactly.
    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let c = lossless::compress(&data);
        let d = lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    /// LZSS with repetitive structure compresses; random data expands
    /// boundedly (flag-bit overhead is 1/8).
    #[test]
    fn lzss_expansion_bound(data in prop::collection::vec(any::<u8>(), 1..2000)) {
        let c = lossless::compress(&data);
        prop_assert!(c.len() <= 8 + data.len() + data.len() / 8 + 2);
    }

    /// Dual-quantization honors the ABS bound for arbitrary finite data.
    #[test]
    fn dualquant_bound(
        data in prop::collection::vec(-1e7f32..1e7, 1..2000),
        eb_exp in -4i32..3,
    ) {
        let eb = 10f64.powi(eb_exp);
        let s = compress_dualquant(&data, Dims::D1(data.len()), eb, 16).unwrap();
        let (rec, _) = decompress_dualquant(&s).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb + 1e-9, "{} vs {}", a, b);
        }
    }
}
