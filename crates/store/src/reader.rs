//! Chunk-granular archive reads.
//!
//! [`StoreReader`] opens an archive (in memory or file-backed), verifies
//! the superblock, the directory CRC, and the manifest SHA-256 up front,
//! and then serves `(snapshot, field, region)` reads by fetching and
//! decoding only the chunks that intersect the requested region. Every
//! chunk payload is CRC-checked before it reaches a decoder, and every
//! decoded chunk must match the shape and value count the directory
//! promised.
//!
//! Telemetry (zero-cost when disabled):
//! - `store.region_reads`, `store.chunks_read`, `store.chunks_decoded`
//! - `store.compressed_bytes_read`, `store.bytes_touched`,
//!   `store.bytes_returned`
//! - gauge `store.read_amplification` = bytes touched / bytes returned
//!   for the most recent read (1.0 is perfect chunk alignment).

use crate::format::{self, Directory, FieldEntry, Superblock, CodecKind, SUPERBLOCK_LEN};
use crate::grid::Region;
use foresight_util::crc::crc32;
use foresight_util::sha256::sha256_hex;
use foresight_util::{telemetry, Error, Result};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Mutex;

/// Per-read accounting: how much work a region read actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Chunks in the field's grid.
    pub chunks_in_field: u64,
    /// Chunks fetched and decoded for this read.
    pub chunks_decoded: u64,
    /// Compressed fragment bytes read from the archive.
    pub compressed_bytes_read: u64,
    /// Uncompressed bytes materialized by chunk decodes.
    pub bytes_touched: u64,
    /// Uncompressed bytes the caller asked for (region size × 4).
    pub bytes_returned: u64,
}

impl ReadStats {
    /// Bytes touched per byte returned; 1.0 means the region aligned
    /// perfectly with chunk boundaries.
    pub fn amplification(&self) -> f64 {
        if self.bytes_returned == 0 {
            return 0.0;
        }
        self.bytes_touched as f64 / self.bytes_returned as f64
    }
}

/// Result of a full-archive integrity verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreCheck {
    /// Fields whose payload digest matched.
    pub fields_ok: usize,
    /// Chunk payloads whose CRC matched.
    pub chunks_ok: usize,
}

enum Backing {
    Bytes(Vec<u8>),
    File(Mutex<File>),
}

/// Read-side handle over a sealed archive.
pub struct StoreReader {
    backing: Backing,
    superblock: Superblock,
    directory: Directory,
}

impl std::fmt::Debug for StoreReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreReader")
            .field("archive_len", &self.superblock.archive_len)
            .field("fields", &self.directory.fields.len())
            .finish()
    }
}

impl StoreReader {
    /// Opens an in-memory archive image, verifying superblock CRC,
    /// layout, manifest digest, and directory before returning.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let (superblock, directory) = format::parse_archive(&bytes)?;
        Ok(Self { backing: Backing::Bytes(bytes), superblock, directory })
    }

    /// Opens a file-backed archive, reading only the superblock and the
    /// directory tail; fragments stay on disk until a read needs them.
    pub fn open(path: &Path) -> Result<Self> {
        let mut f = File::open(path)?;
        let actual_len = f.metadata()?.len();
        let mut head = [0u8; SUPERBLOCK_LEN];
        f.read_exact(&mut head)?;
        let superblock = Superblock::parse(&head)?;
        let (dir_offset, dir_len) = superblock.layout(actual_len)?;
        // layout() proved dir_offset + dir_len == the real file length,
        // so this allocation is bounded by the bytes actually on disk.
        if (dir_len as u64) > actual_len {
            return Err(Error::corrupt("directory longer than the archive"));
        }
        let mut dir = vec![0u8; dir_len];
        f.seek(SeekFrom::Start(dir_offset as u64))?;
        f.read_exact(&mut dir)?;
        format::verify_manifest_digest(&superblock, &dir)?;
        let directory = Directory::parse(&dir, SUPERBLOCK_LEN as u64, superblock.dir_offset)?;
        Ok(Self { backing: Backing::File(Mutex::new(f)), superblock, directory })
    }

    /// The verified superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.superblock
    }

    /// Manifest digest as lowercase hex.
    pub fn manifest_hex(&self) -> String {
        self.superblock.dir_sha256.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// All directory entries, in writer order.
    pub fn fields(&self) -> &[FieldEntry] {
        &self.directory.fields
    }

    /// Looks up one field by `(snapshot, name)`.
    pub fn find(&self, snapshot: u32, name: &str) -> Option<&FieldEntry> {
        self.directory.find(snapshot, name)
    }

    /// Reads the subvolume `region` of field `(snapshot, name)`,
    /// decoding only intersecting chunks. Returns the region's values in
    /// x-fastest order plus the read's accounting.
    pub fn read_region(
        &self,
        snapshot: u32,
        name: &str,
        region: Region,
    ) -> Result<(Vec<f32>, ReadStats)> {
        let entry = self.directory.find(snapshot, name).ok_or_else(|| {
            Error::invalid(format!("no field snapshot={snapshot} name={name:?} in the archive"))
        })?;
        let grid = entry.grid;
        region.validate_in(grid.shape())?;
        let n = region
            .checked_len()
            .ok_or_else(|| Error::invalid("region value count overflows"))?;
        let mut out = vec![0f32; n];
        let mut stats = ReadStats {
            chunks_in_field: entry.chunks.len() as u64,
            bytes_returned: (n as u64) * 4,
            ..ReadStats::default()
        };
        for idx in grid.intersecting(&region) {
            let cid = grid.linear(idx);
            let cref = entry
                .chunks
                .get(cid)
                .ok_or_else(|| Error::corrupt(format!("chunk id {cid} outside the directory")))?;
            let payload = self.fragment(cref.offset, cref.len)?;
            if crc32(&payload) != cref.crc32 {
                return Err(Error::corrupt(format!(
                    "chunk {cid} of field {name:?} failed its CRC"
                )));
            }
            let expect = grid.chunk_shape_at(idx);
            let values = decode_chunk(entry.codec, &payload, expect)?;
            stats.chunks_decoded += 1;
            stats.compressed_bytes_read += payload.len() as u64;
            stats.bytes_touched += (values.len() as u64) * 4;
            grid.scatter_into(&values, idx, &region, &mut out);
        }
        telemetry::counter("store.region_reads", 1);
        telemetry::counter("store.chunks_read", stats.chunks_decoded);
        telemetry::counter("store.chunks_decoded", stats.chunks_decoded);
        telemetry::counter("store.compressed_bytes_read", stats.compressed_bytes_read);
        telemetry::counter("store.bytes_touched", stats.bytes_touched);
        telemetry::counter("store.bytes_returned", stats.bytes_returned);
        telemetry::gauge("store.read_amplification", stats.amplification());
        Ok((out, stats))
    }

    /// Reads an entire field (every chunk).
    pub fn extract(&self, snapshot: u32, name: &str) -> Result<(Vec<f32>, ReadStats)> {
        let entry = self.directory.find(snapshot, name).ok_or_else(|| {
            Error::invalid(format!("no field snapshot={snapshot} name={name:?} in the archive"))
        })?;
        self.read_region(snapshot, name, Region::full(entry.grid.shape()))
    }

    /// Verifies every chunk CRC and every field payload digest without
    /// decoding any stream.
    pub fn verify(&self) -> Result<StoreCheck> {
        let mut check = StoreCheck::default();
        for entry in &self.directory.fields {
            let mut payload = Vec::new();
            for (cid, cref) in entry.chunks.iter().enumerate() {
                let frag = self.fragment(cref.offset, cref.len)?;
                if crc32(&frag) != cref.crc32 {
                    return Err(Error::corrupt(format!(
                        "chunk {cid} of field {:?} failed its CRC",
                        entry.name
                    )));
                }
                check.chunks_ok += 1;
                payload.extend_from_slice(&frag);
            }
            if foresight_util::sha256::sha256(&payload) != entry.payload_sha256 {
                return Err(Error::corrupt(format!(
                    "field {:?} failed its payload digest",
                    entry.name
                )));
            }
            check.fields_ok += 1;
        }
        Ok(check)
    }

    /// Hex digest of one field's concatenated payload (for manifests).
    pub fn field_payload_hex(&self, entry: &FieldEntry) -> Result<String> {
        let mut payload = Vec::new();
        for cref in &entry.chunks {
            payload.extend_from_slice(&self.fragment(cref.offset, cref.len)?);
        }
        Ok(sha256_hex(&payload))
    }

    /// Fetches one fragment. Offsets and lengths were validated against
    /// the fragment region at directory parse time.
    fn fragment(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let start = usize::try_from(offset)
            .map_err(|_| Error::corrupt("fragment offset overflows usize"))?;
        let n =
            usize::try_from(len).map_err(|_| Error::corrupt("fragment length overflows usize"))?;
        match &self.backing {
            Backing::Bytes(bytes) => {
                let end = start
                    .checked_add(n)
                    .ok_or_else(|| Error::corrupt("fragment end overflows"))?;
                bytes
                    .get(start..end)
                    .map(<[u8]>::to_vec)
                    .ok_or_else(|| Error::corrupt("fragment outside the archive image"))
            }
            Backing::File(file) => {
                let mut f = file
                    .lock()
                    .map_err(|_| Error::corrupt("archive file handle poisoned"))?;
                // Directory parsing bounded every fragment inside
                // [SUPERBLOCK_LEN, dir_offset), which layout() proved is
                // inside the file, so n is bounded by the file size.
                if (n as u64) > self.superblock.archive_len {
                    return Err(Error::corrupt("fragment longer than the archive"));
                }
                let mut buf = vec![0u8; n];
                f.seek(SeekFrom::Start(offset))?;
                f.read_exact(&mut buf)?;
                Ok(buf)
            }
        }
    }
}

/// Decodes one chunk payload and checks it against the shape the
/// directory promised for that chunk.
fn decode_chunk(codec: CodecKind, payload: &[u8], expect: crate::grid::FieldShape) -> Result<Vec<f32>> {
    let (values, ok) = match codec {
        CodecKind::Sz => {
            let (values, dims) = lossy_sz::decompress(payload)?;
            let ok = dims == expect.sz_dims();
            (values, ok)
        }
        CodecKind::Zfp => {
            let (values, dims) = lossy_zfp::decompress(payload)?;
            let ok = dims == expect.zfp_dims();
            (values, ok)
        }
    };
    if !ok {
        return Err(Error::corrupt("chunk stream dims disagree with the directory"));
    }
    let want = expect
        .checked_len()
        .ok_or_else(|| Error::corrupt("chunk value count overflows"))?;
    if values.len() != want {
        return Err(Error::corrupt(format!(
            "chunk decoded {} values but the directory promised {want}",
            values.len()
        )));
    }
    Ok(values)
}
