//! On-disk layout of a foresight-store archive: superblock and chunk
//! directory.
//!
//! ```text
//! +--------------------+ offset 0
//! | superblock (68 B)  |  magic "FSTR" | version | dir_offset | dir_len
//! |                    |  | archive_len | dir_sha256 | crc32(first 64 B)
//! +--------------------+ offset 68
//! | fragments          |  chunk payloads, each a complete SZ/ZFP stream
//! +--------------------+ offset dir_offset
//! | directory          |  magic "FDIR" | field entries | crc32
//! +--------------------+ offset archive_len
//! ```
//!
//! The directory is the archive's manifest: per field it records the
//! snapshot id, name, shape, chunk shape, codec, error-bound metadata, a
//! SHA-256 over the field's concatenated chunk payloads, and one
//! `(offset, length, crc32)` fragment reference per chunk. The
//! superblock pins the directory with a SHA-256 so a reader can trust
//! the manifest after two small reads (superblock + directory tail) and
//! then touch only the fragments a request intersects.
//!
//! All parsing is fail-closed: every read goes through
//! [`foresight_util::ByteReader`], every header-derived size is capped
//! and checked, fragment references must land inside the fragment
//! region and must not overlap, and both the superblock CRC and the
//! directory CRC/SHA-256 must verify before any entry is returned.

use crate::grid::{ChunkGrid, FieldShape};
use foresight_util::crc::crc32;
use foresight_util::sha256::sha256;
use foresight_util::{ByteReader, Error, Result};
use std::collections::BTreeSet;

/// Archive magic at offset 0.
pub const ARCHIVE_MAGIC: &[u8; 4] = b"FSTR";
/// Directory magic at `dir_offset`.
pub const DIR_MAGIC: &[u8; 4] = b"FDIR";
/// The only format version this crate reads or writes.
pub const VERSION: u32 = 1;
/// Fixed superblock size in bytes.
pub const SUPERBLOCK_LEN: usize = 68;
/// Longest accepted field name.
pub const MAX_NAME_LEN: usize = 256;
/// Largest accepted extent on any axis.
pub const MAX_EXTENT: u64 = 1 << 32;
/// Most chunks a single field may carry.
pub const MAX_CHUNK_COUNT: usize = 1 << 24;
/// Most fields an archive may carry.
pub const MAX_FIELD_COUNT: usize = 1 << 20;
/// Largest accepted single compressed fragment.
pub const MAX_FRAGMENT_LEN: u64 = 1 << 40;

/// Which codec family a field's chunks were compressed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// SZ-style prediction-based streams (`SZRS` magic).
    Sz,
    /// ZFP-style transform-based streams (`ZFPR` magic).
    Zfp,
}

impl CodecKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            CodecKind::Sz => 0,
            CodecKind::Zfp => 1,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(t: u8) -> Result<Self> {
        match t {
            0 => Ok(CodecKind::Sz),
            1 => Ok(CodecKind::Zfp),
            _ => Err(Error::corrupt(format!("unknown codec tag {t}"))),
        }
    }

    /// Display name as the paper writes it.
    pub fn display(self) -> &'static str {
        match self {
            CodecKind::Sz => "GPU-SZ",
            CodecKind::Zfp => "cuZFP",
        }
    }
}

/// Error-bound metadata recorded per field (display / later per-region
/// bound selection; decoding itself never needs it — the chunk streams
/// are self-describing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSpec {
    /// Mode tag: SZ 0=abs, 1=rel, 2=pw_rel; ZFP 0=rate, 1=precision,
    /// 2=accuracy.
    pub tag: u8,
    /// The numeric bound parameter.
    pub value: f64,
}

impl BoundSpec {
    /// Validates tag range and parameter finiteness.
    pub fn validate(&self) -> Result<()> {
        if self.tag > 2 {
            return Err(Error::corrupt(format!("unknown bound tag {}", self.tag)));
        }
        if !self.value.is_finite() {
            return Err(Error::corrupt("non-finite bound parameter"));
        }
        Ok(())
    }

    /// Short human label, e.g. `abs=0.001` or `rate=8`.
    pub fn label(&self, codec: CodecKind) -> String {
        let name = match (codec, self.tag) {
            (CodecKind::Sz, 0) => "abs",
            (CodecKind::Sz, 1) => "rel",
            (CodecKind::Sz, _) => "pw_rel",
            (CodecKind::Zfp, 0) => "rate",
            (CodecKind::Zfp, 1) => "prec",
            (CodecKind::Zfp, _) => "acc",
        };
        format!("{name}={}", self.value)
    }
}

/// One chunk's fragment reference: where its compressed stream lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Absolute archive offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 of the payload bytes.
    pub crc32: u32,
}

/// One field × snapshot entry in the directory.
#[derive(Debug, Clone)]
pub struct FieldEntry {
    /// Snapshot (timestep) id.
    pub snapshot: u32,
    /// Field name (UTF-8, non-empty).
    pub name: String,
    /// The chunk decomposition (field shape + chunk shape).
    pub grid: ChunkGrid,
    /// Codec family all chunks use.
    pub codec: CodecKind,
    /// Error-bound metadata.
    pub bound: BoundSpec,
    /// SHA-256 over the field's concatenated chunk payloads.
    pub payload_sha256: [u8; 32],
    /// Fragment references in linear chunk order.
    pub chunks: Vec<ChunkRef>,
}

impl FieldEntry {
    /// The field's logical shape.
    pub fn shape(&self) -> FieldShape {
        self.grid.shape()
    }

    /// Total compressed payload bytes across all chunks.
    pub fn compressed_len(&self) -> u64 {
        self.chunks.iter().fold(0u64, |a, c| a.saturating_add(c.len))
    }

    /// Compression ratio relative to `len * 4` uncompressed bytes.
    pub fn ratio(&self) -> f64 {
        let comp = self.compressed_len();
        if comp == 0 {
            return f64::INFINITY;
        }
        (self.shape().len() as f64 * 4.0) / comp as f64
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.snapshot.to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.push(self.shape().ndim());
        for e in self.shape().extents() {
            out.extend_from_slice(&(e as u64).to_le_bytes());
        }
        for c in self.grid.chunk() {
            out.extend_from_slice(&(c as u64).to_le_bytes());
        }
        out.push(self.codec.tag());
        out.push(self.bound.tag);
        out.extend_from_slice(&self.bound.value.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.offset.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
            out.extend_from_slice(&c.crc32.to_le_bytes());
        }
        out.extend_from_slice(&self.payload_sha256);
    }
}

/// The parsed archive directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// Entries in the order the writer added them.
    pub fields: Vec<FieldEntry>,
}

impl Directory {
    /// Serializes the directory, including its trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DIR_MAGIC);
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for f in &self.fields {
            f.encode_into(&mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Looks up a field by `(snapshot, name)`.
    pub fn find(&self, snapshot: u32, name: &str) -> Option<&FieldEntry> {
        self.fields.iter().find(|f| f.snapshot == snapshot && f.name == name)
    }

    /// Parses directory bytes, validating every fragment reference
    /// against the fragment region `[frag_lo, frag_hi)` and rejecting
    /// overlapping fragments and duplicate `(snapshot, name)` keys.
    pub fn parse(dir: &[u8], frag_lo: u64, frag_hi: u64) -> Result<Directory> {
        let mut r = ByteReader::new(dir);
        r.expect_magic(DIR_MAGIC, "a store directory")?;
        let n_fields = r.u32_le()? as usize;
        if n_fields > MAX_FIELD_COUNT {
            return Err(Error::corrupt(format!(
                "directory claims {n_fields} fields (cap {MAX_FIELD_COUNT})"
            )));
        }
        let mut fields = Vec::new();
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n_fields {
            let f = parse_field(&mut r, frag_lo, frag_hi, &mut spans)?;
            if !seen.insert((f.snapshot, f.name.clone())) {
                return Err(Error::corrupt(format!(
                    "duplicate field entry snapshot={} name={:?}",
                    f.snapshot, f.name
                )));
            }
            fields.push(f);
        }
        let body_len = r.pos();
        let stored_crc = r.u32_le()?;
        if r.remaining() != 0 {
            return Err(Error::corrupt("trailing bytes after the directory CRC"));
        }
        let computed = crc32(&dir[..body_len]);
        if stored_crc != computed {
            return Err(Error::corrupt(format!(
                "directory CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            )));
        }
        // Fragments must not overlap: a reference aliasing another
        // chunk's bytes is either corruption or an amplification trick.
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(Error::corrupt(format!(
                    "overlapping chunk fragments at offsets {} and {}",
                    w[0].0, w[1].0
                )));
            }
        }
        Ok(Directory { fields })
    }
}

/// Parses one field entry, pushing its fragment spans for the
/// whole-directory overlap check.
fn parse_field(
    r: &mut ByteReader<'_>,
    frag_lo: u64,
    frag_hi: u64,
    spans: &mut Vec<(u64, u64)>,
) -> Result<FieldEntry> {
    let snapshot = r.u32_le()?;
    let name_len = r.u32_le()? as usize;
    if name_len == 0 || name_len > MAX_NAME_LEN {
        return Err(Error::corrupt(format!("field name length {name_len} out of range")));
    }
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| Error::corrupt("field name is not UTF-8"))?
        .to_string();
    let ndim = r.u8()?;
    let ext = [
        r.u64_le_capped(MAX_EXTENT, "field extent")?,
        r.u64_le_capped(MAX_EXTENT, "field extent")?,
        r.u64_le_capped(MAX_EXTENT, "field extent")?,
    ];
    let shape = FieldShape::from_parts(ndim, ext)?;
    if shape.checked_len().is_none() {
        return Err(Error::corrupt("field value count overflows"));
    }
    let chunk = [
        r.u64_le_capped(MAX_EXTENT, "chunk extent")?,
        r.u64_le_capped(MAX_EXTENT, "chunk extent")?,
        r.u64_le_capped(MAX_EXTENT, "chunk extent")?,
    ];
    let grid = ChunkGrid::new(shape, chunk)?;
    let expect_chunks = grid
        .checked_n_chunks()
        .ok_or_else(|| Error::corrupt("chunk count overflows"))?;
    if expect_chunks > MAX_CHUNK_COUNT {
        return Err(Error::corrupt(format!(
            "field claims {expect_chunks} chunks (cap {MAX_CHUNK_COUNT})"
        )));
    }
    let codec = CodecKind::from_tag(r.u8()?)?;
    let bound = BoundSpec { tag: r.u8()?, value: r.f64_le()? };
    bound.validate()?;
    let n_chunks = r.u32_le()? as usize;
    if n_chunks != expect_chunks {
        return Err(Error::corrupt(format!(
            "directory lists {n_chunks} chunks but the grid has {expect_chunks}"
        )));
    }
    let mut chunks = Vec::new();
    for _ in 0..n_chunks {
        let offset = r.u64_le()?;
        let len = r.u64_le_capped(MAX_FRAGMENT_LEN, "fragment length")? as u64;
        let crc = r.u32_le()?;
        if len == 0 {
            return Err(Error::corrupt("zero-length chunk fragment"));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| Error::corrupt("fragment end overflows"))?;
        if offset < frag_lo || end > frag_hi {
            return Err(Error::corrupt(format!(
                "fragment {offset}+{len} outside the fragment region [{frag_lo}, {frag_hi})"
            )));
        }
        spans.push((offset, end));
        chunks.push(ChunkRef { offset, len, crc32: crc });
    }
    let sha: [u8; 32] = r
        .take(32)?
        .try_into()
        .map_err(|_| Error::corrupt("short payload digest"))?;
    Ok(FieldEntry { snapshot, name, grid, codec, bound, payload_sha256: sha, chunks })
}

/// The fixed-size archive header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Format version (always [`VERSION`]).
    pub version: u32,
    /// Absolute offset of the directory.
    pub dir_offset: u64,
    /// Directory length in bytes.
    pub dir_len: u64,
    /// Total archive length in bytes.
    pub archive_len: u64,
    /// SHA-256 of the directory bytes (the manifest digest).
    pub dir_sha256: [u8; 32],
}

impl Superblock {
    /// Serializes the superblock, including its trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SUPERBLOCK_LEN);
        out.extend_from_slice(ARCHIVE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.dir_offset.to_le_bytes());
        out.extend_from_slice(&self.dir_len.to_le_bytes());
        out.extend_from_slice(&self.archive_len.to_le_bytes());
        out.extend_from_slice(&self.dir_sha256);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and CRC-checks a superblock from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Superblock> {
        let mut r = ByteReader::new(bytes);
        r.expect_magic(ARCHIVE_MAGIC, "a foresight-store archive")?;
        let version = r.u32_le()?;
        if version != VERSION {
            return Err(Error::corrupt(format!(
                "unsupported archive version {version} (expected {VERSION})"
            )));
        }
        let dir_offset = r.u64_le()?;
        let dir_len = r.u64_le()?;
        let archive_len = r.u64_le()?;
        let dir_sha256: [u8; 32] = r
            .take(32)?
            .try_into()
            .map_err(|_| Error::corrupt("short directory digest"))?;
        let body_len = r.pos();
        let stored_crc = r.u32_le()?;
        let computed = crc32(&bytes[..body_len]);
        if stored_crc != computed {
            return Err(Error::corrupt(format!(
                "superblock CRC mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            )));
        }
        Ok(Superblock { version, dir_offset, dir_len, archive_len, dir_sha256 })
    }

    /// Validates the region layout against the real archive length and
    /// returns the directory bounds as `usize` offsets.
    pub fn layout(&self, actual_len: u64) -> Result<(usize, usize)> {
        if self.archive_len != actual_len {
            return Err(Error::corrupt(format!(
                "superblock says {} bytes but the archive has {actual_len}",
                self.archive_len
            )));
        }
        if self.dir_offset < SUPERBLOCK_LEN as u64 {
            return Err(Error::corrupt("directory offset inside the superblock"));
        }
        let dir_end = self
            .dir_offset
            .checked_add(self.dir_len)
            .ok_or_else(|| Error::corrupt("directory end overflows"))?;
        if dir_end != self.archive_len {
            return Err(Error::corrupt(format!(
                "directory {}..{dir_end} does not end the {}-byte archive",
                self.dir_offset, self.archive_len
            )));
        }
        let off = usize::try_from(self.dir_offset)
            .map_err(|_| Error::corrupt("directory offset overflows usize"))?;
        let len = usize::try_from(self.dir_len)
            .map_err(|_| Error::corrupt("directory length overflows usize"))?;
        Ok((off, len))
    }
}

/// Parses a whole in-memory archive: superblock, layout checks, manifest
/// digest, directory.
pub fn parse_archive(bytes: &[u8]) -> Result<(Superblock, Directory)> {
    let sb = Superblock::parse(bytes)?;
    let (dir_offset, dir_len) = sb.layout(bytes.len() as u64)?;
    let mut r = ByteReader::new(bytes);
    let _superblock = r.take(SUPERBLOCK_LEN)?;
    let frag_len = dir_offset
        .checked_sub(SUPERBLOCK_LEN)
        .ok_or_else(|| Error::corrupt("directory offset inside the superblock"))?;
    let _fragments = r.take(frag_len)?;
    let dir = r.take(dir_len)?;
    if r.remaining() != 0 {
        return Err(Error::corrupt("trailing bytes after the directory"));
    }
    verify_manifest_digest(&sb, dir)?;
    let directory = Directory::parse(dir, SUPERBLOCK_LEN as u64, sb.dir_offset)?;
    Ok((sb, directory))
}

/// Checks directory bytes against the superblock's manifest digest.
pub fn verify_manifest_digest(sb: &Superblock, dir: &[u8]) -> Result<()> {
    let got = sha256(dir);
    if got != sb.dir_sha256 {
        return Err(Error::corrupt(
            "manifest digest mismatch: directory bytes do not hash to the superblock's SHA-256",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> FieldEntry {
        let grid = ChunkGrid::new(FieldShape::d3(8, 8, 8), [4, 4, 8]).unwrap();
        FieldEntry {
            snapshot: 3,
            name: "rho".into(),
            grid,
            codec: CodecKind::Sz,
            bound: BoundSpec { tag: 0, value: 1e-3 },
            payload_sha256: [7u8; 32],
            chunks: (0..4)
                .map(|i| ChunkRef { offset: 68 + i * 100, len: 100, crc32: i as u32 })
                .collect(),
        }
    }

    #[test]
    fn directory_round_trips() {
        let dir = Directory { fields: vec![sample_entry()] };
        let bytes = dir.encode();
        let back = Directory::parse(&bytes, 68, 68 + 400).unwrap();
        assert_eq!(back.fields.len(), 1);
        let f = &back.fields[0];
        assert_eq!(f.name, "rho");
        assert_eq!(f.snapshot, 3);
        assert_eq!(f.shape().extents(), [8, 8, 8]);
        assert_eq!(f.grid.chunk(), [4, 4, 8]);
        assert_eq!(f.chunks.len(), 4);
        assert_eq!(f.compressed_len(), 400);
        assert!(back.find(3, "rho").is_some());
        assert!(back.find(2, "rho").is_none());
    }

    #[test]
    fn directory_rejects_out_of_bounds_fragments() {
        let mut e = sample_entry();
        e.chunks[2].offset = 1_000_000; // past frag_hi
        let bytes = Directory { fields: vec![e] }.encode();
        assert!(Directory::parse(&bytes, 68, 68 + 400).is_err());
    }

    #[test]
    fn directory_rejects_overlapping_fragments() {
        let mut e = sample_entry();
        e.chunks[1].offset = e.chunks[0].offset + 1; // overlaps chunk 0
        let bytes = Directory { fields: vec![e] }.encode();
        let err = Directory::parse(&bytes, 68, 68 + 400).unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
    }

    #[test]
    fn directory_rejects_duplicate_keys() {
        let bytes = Directory { fields: vec![sample_entry(), sample_entry()] }.encode();
        // Duplicate (snapshot, name) also means overlapping fragments;
        // widen the second copy's offsets to isolate the key check.
        let mut e2 = sample_entry();
        for (i, c) in e2.chunks.iter_mut().enumerate() {
            c.offset = 68 + 400 + (i as u64) * 100;
        }
        let bytes2 = Directory { fields: vec![sample_entry(), e2] }.encode();
        assert!(Directory::parse(&bytes, 68, 68 + 800).is_err());
        let err = Directory::parse(&bytes2, 68, 68 + 800).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn directory_crc_catches_flips() {
        let bytes = Directory { fields: vec![sample_entry()] }.encode();
        for at in [5usize, 20, bytes.len() / 2] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(Directory::parse(&bad, 68, 68 + 400).is_err(), "flip at {at} accepted");
        }
    }

    #[test]
    fn superblock_round_trips_and_checks() {
        let sb = Superblock {
            version: VERSION,
            dir_offset: 1000,
            dir_len: 200,
            archive_len: 1200,
            dir_sha256: [9u8; 32],
        };
        let bytes = sb.encode();
        assert_eq!(bytes.len(), SUPERBLOCK_LEN);
        assert_eq!(Superblock::parse(&bytes).unwrap(), sb);
        assert_eq!(sb.layout(1200).unwrap(), (1000, 200));
        assert!(sb.layout(1201).is_err());
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(Superblock::parse(&bad).is_err());
        let mut wrong_ver = sb;
        wrong_ver.version = 2;
        assert!(Superblock::parse(&wrong_ver.encode()).is_err());
    }
}
