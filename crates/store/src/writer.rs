//! Archive packing: chunk a field, compress every chunk independently,
//! lay fragments out contiguously, and seal the archive with its
//! directory and superblock.
//!
//! The writer is write-once: fields accumulate in memory and
//! [`StoreWriter::finish`] produces the final byte image in one pass.
//! Chunks compress in parallel (rayon) because chunking makes each
//! stream independent — exactly the property the reader exploits for
//! chunk-granular random access.

use crate::format::{
    BoundSpec, ChunkRef, CodecKind, Directory, FieldEntry, Superblock, MAX_CHUNK_COUNT,
    MAX_FIELD_COUNT, MAX_NAME_LEN, SUPERBLOCK_LEN, VERSION,
};
use crate::grid::{ChunkGrid, FieldShape, Region};
use foresight_util::crc::crc32;
use foresight_util::sha256::sha256;
use foresight_util::{telemetry, Error, Result};
use lossy_sz::SzConfig;
use lossy_zfp::ZfpConfig;
use rayon::prelude::*;
use std::path::Path;

/// Codec + error-bound selection for one field's chunks.
#[derive(Debug, Clone)]
pub enum ChunkCodec {
    /// GPU-SZ with the given configuration.
    Sz(SzConfig),
    /// cuZFP with the given configuration.
    Zfp(ZfpConfig),
}

impl ChunkCodec {
    /// SZ with an absolute error bound.
    pub fn sz_abs(eb: f64) -> Self {
        ChunkCodec::Sz(SzConfig::abs(eb))
    }

    /// SZ with a value-range-relative error bound.
    pub fn sz_rel(rel: f64) -> Self {
        ChunkCodec::Sz(SzConfig::rel(rel))
    }

    /// ZFP in fixed-rate mode.
    pub fn zfp_rate(rate: f64) -> Self {
        ChunkCodec::Zfp(ZfpConfig::rate(rate))
    }

    /// Which codec family this is.
    pub fn kind(&self) -> CodecKind {
        match self {
            ChunkCodec::Sz(_) => CodecKind::Sz,
            ChunkCodec::Zfp(_) => CodecKind::Zfp,
        }
    }

    /// The bound metadata recorded in the directory.
    pub fn bound(&self) -> BoundSpec {
        match self {
            ChunkCodec::Sz(cfg) => {
                let tag = match cfg.mode {
                    lossy_sz::ErrorBound::Abs(_) => 0,
                    lossy_sz::ErrorBound::Rel(_) => 1,
                    lossy_sz::ErrorBound::PwRel(_) => 2,
                };
                BoundSpec { tag, value: cfg.mode.value() }
            }
            ChunkCodec::Zfp(cfg) => BoundSpec { tag: cfg.mode.tag(), value: cfg.mode.param() },
        }
    }

    /// Short human label, e.g. `GPU-SZ abs=0.001`.
    pub fn label(&self) -> String {
        let kind = self.kind();
        format!("{} {}", kind.display(), self.bound().label(kind))
    }

    /// Compresses one dense chunk with this codec.
    pub fn compress_chunk(&self, values: &[f32], shape: FieldShape) -> Result<Vec<u8>> {
        match self {
            ChunkCodec::Sz(cfg) => lossy_sz::compress(values, shape.sz_dims(), cfg),
            ChunkCodec::Zfp(cfg) => lossy_zfp::compress(values, shape.zfp_dims(), cfg),
        }
    }
}

struct PendingField {
    snapshot: u32,
    name: String,
    grid: ChunkGrid,
    codec: CodecKind,
    bound: BoundSpec,
    streams: Vec<Vec<u8>>,
}

/// Accumulates compressed fields and seals them into one archive image.
#[derive(Default)]
pub struct StoreWriter {
    fields: Vec<PendingField>,
}

impl StoreWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fields added so far.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Chunks and compresses `data` as field `(snapshot, name)`.
    ///
    /// `data` must hold exactly `shape.len()` values in x-fastest order;
    /// `chunk` is the nominal chunk shape (boundary chunks clamp).
    pub fn add_field(
        &mut self,
        snapshot: u32,
        name: &str,
        data: &[f32],
        shape: FieldShape,
        chunk: [usize; 3],
        codec: &ChunkCodec,
    ) -> Result<()> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(Error::invalid(format!(
                "field name length {} not in 1..={MAX_NAME_LEN}",
                name.len()
            )));
        }
        if self.fields.len() >= MAX_FIELD_COUNT {
            return Err(Error::invalid(format!("archive field cap {MAX_FIELD_COUNT} reached")));
        }
        if self.fields.iter().any(|f| f.snapshot == snapshot && f.name == name) {
            return Err(Error::invalid(format!(
                "field snapshot={snapshot} name={name:?} already added"
            )));
        }
        let n = shape
            .checked_len()
            .ok_or_else(|| Error::invalid("field value count overflows"))?;
        if data.len() != n {
            return Err(Error::invalid(format!(
                "field {name:?} has {} values but shape {:?} needs {n}",
                data.len(),
                shape.extents()
            )));
        }
        let grid = ChunkGrid::new(shape, chunk)?;
        let n_chunks = grid
            .checked_n_chunks()
            .ok_or_else(|| Error::invalid("chunk count overflows"))?;
        if n_chunks > MAX_CHUNK_COUNT {
            return Err(Error::invalid(format!(
                "field {name:?} would need {n_chunks} chunks (cap {MAX_CHUNK_COUNT})"
            )));
        }
        let ids = grid.intersecting(&Region::full(shape));
        let streams = ids
            .par_iter()
            .map(|&idx| codec.compress_chunk(&grid.gather(data, idx), grid.chunk_shape_at(idx)))
            .collect::<Result<Vec<Vec<u8>>>>()?;
        telemetry::counter("store.chunks_packed", streams.len() as u64);
        self.fields.push(PendingField {
            snapshot,
            name: name.to_string(),
            grid,
            codec: codec.kind(),
            bound: codec.bound(),
            streams,
        });
        Ok(())
    }

    /// Seals the archive: lays fragments out after the superblock,
    /// builds the directory with per-chunk CRCs and per-field payload
    /// digests, and pins it with the superblock's manifest SHA-256.
    pub fn finish(self) -> Result<Vec<u8>> {
        if self.fields.is_empty() {
            return Err(Error::invalid("an archive must hold at least one field"));
        }
        let mut payload: Vec<u8> = Vec::new();
        let mut entries = Vec::new();
        for f in self.fields {
            let field_start = payload.len();
            let mut chunks = Vec::with_capacity(f.streams.len());
            for s in &f.streams {
                let offset = (SUPERBLOCK_LEN + payload.len()) as u64;
                chunks.push(ChunkRef { offset, len: s.len() as u64, crc32: crc32(s) });
                payload.extend_from_slice(s);
            }
            entries.push(FieldEntry {
                snapshot: f.snapshot,
                name: f.name,
                grid: f.grid,
                codec: f.codec,
                bound: f.bound,
                payload_sha256: sha256(&payload[field_start..]),
                chunks,
            });
        }
        let dir = Directory { fields: entries }.encode();
        let dir_offset = SUPERBLOCK_LEN + payload.len();
        let archive_len = dir_offset + dir.len();
        let sb = Superblock {
            version: VERSION,
            dir_offset: dir_offset as u64,
            dir_len: dir.len() as u64,
            archive_len: archive_len as u64,
            dir_sha256: sha256(&dir),
        };
        let mut out = Vec::with_capacity(archive_len);
        out.extend_from_slice(&sb.encode());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&dir);
        telemetry::counter("store.archives_packed", 1);
        telemetry::counter("store.packed_bytes", out.len() as u64);
        Ok(out)
    }

    /// Seals the archive and writes it to `path`.
    pub fn write_file(self, path: &Path) -> Result<()> {
        let bytes = self.finish()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }
}
