//! Field shapes, regions, and the chunk grid.
//!
//! A field is an up-to-3-D array (x fastest: `index = x + nx*(y + ny*z)`)
//! cut into fixed-shape chunks. Chunks at the high edge of an axis are
//! clamped to the field boundary, so every value belongs to exactly one
//! chunk. All grid math is checked: shapes and chunk shapes that would
//! overflow a `usize` product surface as [`Error::InvalidArgument`] (or
//! [`Error::Corrupt`] when they came from an archive directory), never as
//! a wrapped multiplication.

use foresight_util::{Error, Result};
use lossy_sz::Dims as SzDims;
use lossy_zfp::Dims3 as ZfpDims;

/// Logical shape of a stored field: dimensionality plus extents.
///
/// Unused axes always hold extent 1, so 1-D/2-D fields embed in the same
/// 3-D grid math while round-tripping to the exact codec `Dims` variant
/// they were compressed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldShape {
    ndim: u8,
    ext: [usize; 3],
}

impl FieldShape {
    /// 1-D shape of `n` values.
    pub fn d1(n: usize) -> Self {
        Self { ndim: 1, ext: [n, 1, 1] }
    }

    /// 2-D shape, `nx` fastest.
    pub fn d2(nx: usize, ny: usize) -> Self {
        Self { ndim: 2, ext: [nx, ny, 1] }
    }

    /// 3-D shape, `nx` fastest.
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        Self { ndim: 3, ext: [nx, ny, nz] }
    }

    /// Builds a shape from a dimensionality tag and raw extents,
    /// rejecting zero extents, a bad tag, and non-1 extents on unused
    /// axes. This is the untrusted-input constructor the directory
    /// parser uses.
    pub fn from_parts(ndim: u8, ext: [usize; 3]) -> Result<Self> {
        if !(1..=3).contains(&ndim) {
            return Err(Error::corrupt(format!("field ndim {ndim} not in 1..=3")));
        }
        for (i, &e) in ext.iter().enumerate() {
            if e == 0 {
                return Err(Error::corrupt(format!("field extent {i} is zero")));
            }
            if i >= ndim as usize && e != 1 {
                return Err(Error::corrupt(format!(
                    "extent {i} = {e} on an unused axis (ndim {ndim})"
                )));
            }
        }
        Ok(Self { ndim, ext })
    }

    /// Dimensionality (1, 2, or 3).
    pub fn ndim(&self) -> u8 {
        self.ndim
    }

    /// Extents as `[nx, ny, nz]` (unused axes are 1).
    pub fn extents(&self) -> [usize; 3] {
        self.ext
    }

    /// Total number of values, or `None` on overflow.
    pub fn checked_len(&self) -> Option<usize> {
        self.ext[0].checked_mul(self.ext[1])?.checked_mul(self.ext[2])
    }

    /// Total number of values. Callers hold shapes that already passed
    /// [`FieldShape::checked_len`] validation at construction sites.
    pub fn len(&self) -> usize {
        self.checked_len().unwrap_or(usize::MAX)
    }

    /// True when any axis would be empty (impossible for validated
    /// shapes, which reject zero extents).
    pub fn is_empty(&self) -> bool {
        self.ext.contains(&0)
    }

    /// The equivalent `lossy-sz` dims, preserving dimensionality.
    pub fn sz_dims(&self) -> SzDims {
        match self.ndim {
            1 => SzDims::D1(self.ext[0]),
            2 => SzDims::D2(self.ext[0], self.ext[1]),
            _ => SzDims::D3(self.ext[0], self.ext[1], self.ext[2]),
        }
    }

    /// The equivalent `lossy-zfp` dims, preserving dimensionality.
    pub fn zfp_dims(&self) -> ZfpDims {
        match self.ndim {
            1 => ZfpDims::D1(self.ext[0]),
            2 => ZfpDims::D2(self.ext[0], self.ext[1]),
            _ => ZfpDims::D3(self.ext[0], self.ext[1], self.ext[2]),
        }
    }
}

/// Half-open axis-aligned box of values inside a field: `lo[i] <=
/// coordinate < hi[i]` on each axis. Unused axes of lower-dimensional
/// fields use `lo = 0, hi = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive lower corner.
    pub lo: [usize; 3],
    /// Exclusive upper corner.
    pub hi: [usize; 3],
}

impl Region {
    /// A region from corners, rejecting empty or inverted boxes.
    pub fn new(lo: [usize; 3], hi: [usize; 3]) -> Result<Self> {
        for i in 0..3 {
            if hi[i] <= lo[i] {
                return Err(Error::invalid(format!(
                    "region axis {i} is empty or inverted ({}..{})",
                    lo[i], hi[i]
                )));
            }
        }
        Ok(Self { lo, hi })
    }

    /// The region covering an entire field.
    pub fn full(shape: FieldShape) -> Self {
        Self { lo: [0, 0, 0], hi: shape.extents() }
    }

    /// Region extents per axis.
    pub fn extents(&self) -> [usize; 3] {
        [self.hi[0] - self.lo[0], self.hi[1] - self.lo[1], self.hi[2] - self.lo[2]]
    }

    /// Number of values in the region, or `None` on overflow.
    pub fn checked_len(&self) -> Option<usize> {
        let e = self.extents();
        e[0].checked_mul(e[1])?.checked_mul(e[2])
    }

    /// Validates that the region lies inside `shape`.
    pub fn validate_in(&self, shape: FieldShape) -> Result<()> {
        let ext = shape.extents();
        for (i, &e) in ext.iter().enumerate() {
            if self.hi[i] > e {
                return Err(Error::invalid(format!(
                    "region axis {i} reaches {} but the field extent is {}",
                    self.hi[i], e
                )));
            }
        }
        Ok(())
    }

    /// True when `self` equals the whole of `shape`.
    pub fn is_full(&self, shape: FieldShape) -> bool {
        self.lo == [0, 0, 0] && self.hi == shape.extents()
    }
}

/// The chunk decomposition of one field: a fixed chunk shape tiling the
/// field, with boundary chunks clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGrid {
    shape: FieldShape,
    chunk: [usize; 3],
}

impl ChunkGrid {
    /// Builds the grid, rejecting zero chunk extents and chunk extents
    /// on unused axes.
    pub fn new(shape: FieldShape, chunk: [usize; 3]) -> Result<Self> {
        for (i, &c) in chunk.iter().enumerate() {
            if c == 0 {
                return Err(Error::corrupt(format!("chunk extent {i} is zero")));
            }
            if i >= shape.ndim() as usize && c != 1 {
                return Err(Error::corrupt(format!(
                    "chunk extent {i} = {c} on an unused axis (ndim {})",
                    shape.ndim()
                )));
            }
        }
        Ok(Self { shape, chunk })
    }

    /// The field shape this grid tiles.
    pub fn shape(&self) -> FieldShape {
        self.shape
    }

    /// The nominal (unclamped) chunk shape.
    pub fn chunk(&self) -> [usize; 3] {
        self.chunk
    }

    /// Chunks per axis.
    pub fn counts(&self) -> [usize; 3] {
        let ext = self.shape.extents();
        [
            ext[0].div_ceil(self.chunk[0]),
            ext[1].div_ceil(self.chunk[1]),
            ext[2].div_ceil(self.chunk[2]),
        ]
    }

    /// Total number of chunks, or `None` on overflow.
    pub fn checked_n_chunks(&self) -> Option<usize> {
        let c = self.counts();
        c[0].checked_mul(c[1])?.checked_mul(c[2])
    }

    /// Linear chunk id of grid coordinates (x fastest, mirroring value
    /// order).
    pub fn linear(&self, idx: [usize; 3]) -> usize {
        let c = self.counts();
        idx[0] + c[0] * (idx[1] + c[1] * idx[2])
    }

    /// Origin (lowest corner) of chunk `idx` in field coordinates.
    pub fn origin(&self, idx: [usize; 3]) -> [usize; 3] {
        [idx[0] * self.chunk[0], idx[1] * self.chunk[1], idx[2] * self.chunk[2]]
    }

    /// The (boundary-clamped) shape of chunk `idx`, preserving the
    /// field's dimensionality.
    pub fn chunk_shape_at(&self, idx: [usize; 3]) -> FieldShape {
        let ext = self.shape.extents();
        let o = self.origin(idx);
        let ce = [
            self.chunk[0].min(ext[0] - o[0]),
            self.chunk[1].min(ext[1] - o[1]),
            self.chunk[2].min(ext[2] - o[2]),
        ];
        match self.shape.ndim() {
            1 => FieldShape::d1(ce[0]),
            2 => FieldShape::d2(ce[0], ce[1]),
            _ => FieldShape::d3(ce[0], ce[1], ce[2]),
        }
    }

    /// Grid coordinates of every chunk intersecting `region`, in linear
    /// (x-fastest) order.
    pub fn intersecting(&self, region: &Region) -> Vec<[usize; 3]> {
        let counts = self.counts();
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for i in 0..3 {
            lo[i] = region.lo[i] / self.chunk[i];
            hi[i] = ((region.hi[i] - 1) / self.chunk[i]).min(counts[i] - 1);
        }
        let mut out = Vec::new();
        for cz in lo[2]..=hi[2] {
            for cy in lo[1]..=hi[1] {
                for cx in lo[0]..=hi[0] {
                    out.push([cx, cy, cz]);
                }
            }
        }
        out
    }

    /// Copies chunk `idx` out of the full field array into a dense
    /// chunk-local buffer (x fastest within the chunk).
    pub fn gather(&self, data: &[f32], idx: [usize; 3]) -> Vec<f32> {
        let ext = self.shape.extents();
        let o = self.origin(idx);
        let ce = self.chunk_shape_at(idx).extents();
        let mut out = Vec::with_capacity(ce[0] * ce[1] * ce[2]);
        for z in 0..ce[2] {
            for y in 0..ce[1] {
                let row = o[0] + ext[0] * (o[1] + y + ext[1] * (o[2] + z));
                out.extend_from_slice(&data[row..row + ce[0]]);
            }
        }
        out
    }

    /// Copies the intersection of chunk `idx` and `region` from the
    /// chunk-local buffer `chunk_values` into `out`, which is laid out
    /// densely over `region` (x fastest within the region).
    pub fn scatter_into(
        &self,
        chunk_values: &[f32],
        idx: [usize; 3],
        region: &Region,
        out: &mut [f32],
    ) {
        let o = self.origin(idx);
        let ce = self.chunk_shape_at(idx).extents();
        let re = region.extents();
        // Intersection of the chunk box and the region, in field coords.
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for i in 0..3 {
            lo[i] = region.lo[i].max(o[i]);
            hi[i] = region.hi[i].min(o[i] + ce[i]);
        }
        if (0..3).any(|i| hi[i] <= lo[i]) {
            return;
        }
        let run = hi[0] - lo[0];
        for z in lo[2]..hi[2] {
            for y in lo[1]..hi[1] {
                let src = (lo[0] - o[0]) + ce[0] * ((y - o[1]) + ce[1] * (z - o[2]));
                let dst = (lo[0] - region.lo[0])
                    + re[0] * ((y - region.lo[1]) + re[1] * (z - region.lo[2]));
                out[dst..dst + run].copy_from_slice(&chunk_values[src..src + run]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_round_trips_dims() {
        assert_eq!(FieldShape::d1(7).sz_dims(), SzDims::D1(7));
        assert_eq!(FieldShape::d2(4, 5).sz_dims(), SzDims::D2(4, 5));
        assert_eq!(FieldShape::d3(2, 3, 4).zfp_dims(), ZfpDims::D3(2, 3, 4));
        assert_eq!(FieldShape::d3(2, 3, 4).len(), 24);
    }

    #[test]
    fn from_parts_rejects_bad_shapes() {
        assert!(FieldShape::from_parts(0, [1, 1, 1]).is_err());
        assert!(FieldShape::from_parts(4, [1, 1, 1]).is_err());
        assert!(FieldShape::from_parts(2, [4, 0, 1]).is_err());
        assert!(FieldShape::from_parts(1, [4, 2, 1]).is_err(), "extent on unused axis");
        assert!(FieldShape::from_parts(3, [4, 2, 2]).is_ok());
    }

    #[test]
    fn region_validation() {
        let shape = FieldShape::d3(8, 8, 8);
        assert!(Region::new([0, 0, 0], [0, 1, 1]).is_err());
        assert!(Region::new([2, 2, 2], [2, 3, 3]).is_err());
        let r = Region::new([1, 2, 3], [4, 5, 6]).unwrap();
        assert_eq!(r.checked_len(), Some(27));
        assert!(r.validate_in(shape).is_ok());
        let r = Region::new([0, 0, 0], [9, 1, 1]).unwrap();
        assert!(r.validate_in(shape).is_err());
        assert!(Region::full(shape).is_full(shape));
    }

    #[test]
    fn grid_counts_and_clamping() {
        let g = ChunkGrid::new(FieldShape::d3(10, 8, 3), [4, 4, 4]).unwrap();
        assert_eq!(g.counts(), [3, 2, 1]);
        assert_eq!(g.checked_n_chunks(), Some(6));
        assert_eq!(g.chunk_shape_at([0, 0, 0]).extents(), [4, 4, 3]);
        assert_eq!(g.chunk_shape_at([2, 1, 0]).extents(), [2, 4, 3]);
        assert_eq!(g.origin([2, 1, 0]), [8, 4, 0]);
        assert_eq!(g.linear([2, 1, 0]), 5);
    }

    #[test]
    fn intersecting_chunks_cover_region_only() {
        let g = ChunkGrid::new(FieldShape::d3(16, 16, 16), [4, 4, 4]).unwrap();
        let r = Region::new([3, 0, 5], [5, 4, 9]).unwrap();
        let hits = g.intersecting(&r);
        // x spans chunks 0..=1, y chunk 0, z chunks 1..=2.
        assert_eq!(hits.len(), 4);
        assert!(hits.contains(&[0, 0, 1]) && hits.contains(&[1, 0, 2]));
    }

    #[test]
    fn gather_scatter_round_trip() {
        let shape = FieldShape::d3(6, 5, 4);
        let data: Vec<f32> = (0..shape.len()).map(|i| i as f32).collect();
        let g = ChunkGrid::new(shape, [4, 2, 3]).unwrap();
        let region = Region::full(shape);
        let mut out = vec![f32::NAN; shape.len()];
        for idx in g.intersecting(&region) {
            let chunk = g.gather(&data, idx);
            g.scatter_into(&chunk, idx, &region, &mut out);
        }
        assert_eq!(data, out);
    }

    #[test]
    fn scatter_into_subregion_matches_slice() {
        let shape = FieldShape::d3(8, 8, 8);
        let data: Vec<f32> = (0..shape.len()).map(|i| (i as f32).sqrt()).collect();
        let g = ChunkGrid::new(shape, [3, 3, 3]).unwrap();
        let region = Region::new([2, 1, 4], [7, 6, 8]).unwrap();
        let re = region.extents();
        let mut out = vec![f32::NAN; region.checked_len().unwrap()];
        for idx in g.intersecting(&region) {
            let chunk = g.gather(&data, idx);
            g.scatter_into(&chunk, idx, &region, &mut out);
        }
        for z in 0..re[2] {
            for y in 0..re[1] {
                for x in 0..re[0] {
                    let src = (region.lo[0] + x)
                        + 8 * ((region.lo[1] + y) + 8 * (region.lo[2] + z));
                    let dst = x + re[0] * (y + re[1] * z);
                    assert_eq!(out[dst], data[src]);
                }
            }
        }
    }
}
