//! `foresight-store`: a seekable, write-once snapshot archive with
//! chunk-granular random access.
//!
//! The paper's serving story ("millions of users reading slices" of Nyx
//! snapshots) needs a durable format, not in-memory planes. This crate
//! provides an MSFZ-style container: many fields × timesteps in one
//! file, each field cut into fixed-shape chunks compressed independently
//! through the existing GPU-SZ / cuZFP stream codecs, addressed by a
//! compact directory so any subvolume decompresses without touching the
//! rest of the archive.
//!
//! Layout (see `format` for the byte-level contract):
//!
//! ```text
//! superblock (68 B) | chunk fragments ... | directory (tail)
//! ```
//!
//! Integrity is layered: a CRC32 on the superblock, a CRC32 per chunk
//! payload, a CRC32 on the directory, a SHA-256 payload digest per
//! field, and a SHA-256 manifest digest over the directory pinned in the
//! superblock. All parsing is fail-closed on
//! [`foresight_util::ByteReader`] with capped, checked sizes — malformed
//! archives produce typed errors, never panics or absurd allocations.
//!
//! ```
//! use foresight_store::{ChunkCodec, FieldShape, Region, StoreReader, StoreWriter};
//!
//! let shape = FieldShape::d3(16, 16, 16);
//! let data: Vec<f32> = (0..shape.len()).map(|i| (i % 97) as f32).collect();
//! let mut w = StoreWriter::new();
//! w.add_field(0, "rho", &data, shape, [8, 8, 8], &ChunkCodec::sz_abs(1e-3)).unwrap();
//! let store = StoreReader::from_bytes(w.finish().unwrap()).unwrap();
//! let region = Region::new([2, 2, 2], [8, 8, 8]).unwrap();
//! let (values, stats) = store.read_region(0, "rho", region).unwrap();
//! assert_eq!(values.len(), 216);
//! assert_eq!(stats.chunks_decoded, 1);
//! assert_eq!(stats.chunks_in_field, 8);
//! ```

#![forbid(unsafe_code)]

pub mod format;
pub mod grid;
pub mod reader;
pub mod writer;

pub use format::{BoundSpec, ChunkRef, CodecKind, Directory, FieldEntry, Superblock};
pub use grid::{ChunkGrid, FieldShape, Region};
pub use reader::{ReadStats, StoreCheck, StoreReader};
pub use writer::{ChunkCodec, StoreWriter};
