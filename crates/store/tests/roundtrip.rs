//! Round-trip property tests: packing is a pure re-arrangement of the
//! codecs' own streams.
//!
//! Two invariants, over arbitrary shapes × chunk shapes × codec/bound
//! combinations:
//!
//! 1. pack → extract is bit-identical to running the codec directly on
//!    each chunk (gather → compress → decompress → scatter). The
//!    container adds integrity metadata, never distortion of its own.
//! 2. A random subregion read equals the same slice of the full-field
//!    decode — chunk-granular access must be invisible to the caller.

use foresight_store::{ChunkCodec, ChunkGrid, FieldShape, Region, StoreReader, StoreWriter};
use proptest::prelude::*;

fn synth(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as u32).wrapping_mul(seed | 1) as f32 * 1e-8).sin() * 25.0 + 1.5)
        .collect()
}

fn codec_for(sel: u8) -> ChunkCodec {
    match sel % 4 {
        0 => ChunkCodec::sz_abs(1e-2),
        1 => ChunkCodec::sz_rel(1e-3),
        2 => ChunkCodec::zfp_rate(8.0),
        _ => ChunkCodec::zfp_rate(16.0),
    }
}

fn shape_for(sel: u8, a: usize, b: usize, c: usize) -> (FieldShape, [usize; 3]) {
    // Extents in 4..=20 per axis, chunks in 2..=9 — small enough for
    // debug-profile codecs, boundary-clamping chunks included.
    let (ax, bx, cx) = (4 + a % 17, 4 + b % 17, 4 + c % 17);
    let ch = |x: usize| 2 + x % 8;
    match sel % 3 {
        0 => (FieldShape::d1(ax * bx), [ch(a), 1, 1]),
        1 => (FieldShape::d2(ax, bx), [ch(a), ch(b), 1]),
        _ => (FieldShape::d3(ax, bx, cx), [ch(a), ch(b), ch(c)]),
    }
}

/// The expected full-field decode, built with the codec APIs directly:
/// per chunk, gather → compress → decompress → scatter.
fn direct_decode(
    data: &[f32],
    shape: FieldShape,
    chunk: [usize; 3],
    codec: &ChunkCodec,
) -> Vec<f32> {
    let grid = ChunkGrid::new(shape, chunk).unwrap();
    let full = Region::full(shape);
    let mut out = vec![0f32; shape.len()];
    for idx in grid.intersecting(&full) {
        let stream = codec.compress_chunk(&grid.gather(data, idx), grid.chunk_shape_at(idx)).unwrap();
        let values = match codec {
            ChunkCodec::Sz(_) => lossy_sz::decompress(&stream).unwrap().0,
            ChunkCodec::Zfp(_) => lossy_zfp::decompress(&stream).unwrap().0,
        };
        grid.scatter_into(&values, idx, &full, &mut out);
    }
    out
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: the container reproduces the codec's own output
    /// bit for bit, for every shape/chunk/codec combination.
    #[test]
    fn pack_extract_matches_direct_codec(
        sel in any::<u8>(),
        csel in any::<u8>(),
        a in any::<usize>(), b in any::<usize>(), c in any::<usize>(),
        seed in any::<u32>(),
    ) {
        let (shape, chunk) = shape_for(sel, a, b, c);
        let codec = codec_for(csel);
        let data = synth(shape.len(), seed);

        let mut w = StoreWriter::new();
        w.add_field(9, "field", &data, shape, chunk, &codec).unwrap();
        let reader = StoreReader::from_bytes(w.finish().unwrap()).unwrap();
        let (packed, stats) = reader.extract(9, "field").unwrap();

        let direct = direct_decode(&data, shape, chunk, &codec);
        prop_assert_eq!(bits(&packed), bits(&direct));
        prop_assert_eq!(stats.chunks_decoded, stats.chunks_in_field);
        prop_assert_eq!(stats.bytes_returned, (shape.len() as u64) * 4);
    }

    /// Invariant 2: a random subregion read equals the same slice of
    /// the full decode, bit for bit, with bounded work accounting.
    #[test]
    fn region_read_matches_full_decode_slice(
        sel in any::<u8>(),
        csel in any::<u8>(),
        a in any::<usize>(), b in any::<usize>(), c in any::<usize>(),
        seed in any::<u32>(),
        rsel in prop::collection::vec(any::<u32>(), 6),
    ) {
        let (shape, chunk) = shape_for(sel, a, b, c);
        let codec = codec_for(csel);
        let data = synth(shape.len(), seed);

        let mut w = StoreWriter::new();
        w.add_field(0, "f", &data, shape, chunk, &codec).unwrap();
        let reader = StoreReader::from_bytes(w.finish().unwrap()).unwrap();
        let (full, _) = reader.extract(0, "f").unwrap();

        // A random non-empty subregion per axis.
        let ext = shape.extents();
        let mut lo = [0usize; 3];
        let mut hi = [1usize; 3];
        for axis in 0..3 {
            if ext[axis] <= 1 {
                continue;
            }
            let x0 = rsel[axis] as usize % ext[axis];
            let x1 = rsel[axis + 3] as usize % ext[axis];
            lo[axis] = x0.min(x1);
            hi[axis] = x0.max(x1) + 1;
        }
        let region = Region::new(lo, hi).unwrap();
        let (sub, stats) = reader.read_region(0, "f", region).unwrap();

        // Slice the full decode by hand (x fastest).
        let rext = region.extents();
        let mut expected = Vec::with_capacity(rext[0] * rext[1] * rext[2]);
        for z in lo[2]..hi[2] {
            for y in lo[1]..hi[1] {
                for x in lo[0]..hi[0] {
                    expected.push(full[x + ext[0] * (y + ext[1] * z)]);
                }
            }
        }
        prop_assert_eq!(bits(&sub), bits(&expected));
        prop_assert!(stats.chunks_decoded <= stats.chunks_in_field);
        prop_assert!(stats.bytes_touched >= stats.bytes_returned);
        prop_assert_eq!(stats.bytes_returned, (expected.len() as u64) * 4);
    }
}
