//! Mutation fuzzing of the archive container decoder.
//!
//! Start from valid archives, then truncate, bit-flip, splice, and
//! rewrite windows of bytes; also forge directories with hostile chunk
//! tables (overlapping fragments, out-of-bounds extents, wrong chunk
//! counts) whose CRCs and manifest digests are all *valid*. The
//! container must never panic, never allocate past the bytes actually
//! present, and must fail closed with a typed error: every byte of an
//! archive is covered by the superblock CRC, the manifest SHA-256, the
//! directory CRC, or a chunk CRC, so every mutation must surface as
//! `Err` from opening or from reading — never as silently wrong data.

use foresight_store::{
    ChunkCodec, ChunkGrid, ChunkRef, CodecKind, Directory, FieldEntry, FieldShape, StoreReader,
    StoreWriter, Superblock,
};
use foresight_store::format::{BoundSpec, SUPERBLOCK_LEN, VERSION};
use foresight_util::sha256::sha256;
use proptest::prelude::*;
use std::sync::OnceLock;

const VARIANTS: usize = 6;

/// A modest valid corpus: both codecs over 1-D/2-D/3-D fields, chunk
/// shapes that exercise boundary clamping, and a two-field archive.
fn make_archive(variant: usize) -> &'static [u8] {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    &CORPUS.get_or_init(|| {
        (0..VARIANTS)
            .map(|v| {
                let data: Vec<f32> = (0..512)
                    .map(|i| ((i as f32) * 0.07 + v as f32).sin() * 30.0)
                    .collect();
                let codec = match v % 2 {
                    0 => ChunkCodec::sz_abs(1e-2),
                    _ => ChunkCodec::zfp_rate(8.0),
                };
                let (shape, chunk) = match v % 3 {
                    0 => (FieldShape::d1(512), [100, 1, 1]),
                    1 => (FieldShape::d2(32, 16), [10, 6, 1]),
                    _ => (FieldShape::d3(8, 8, 8), [4, 4, 4]),
                };
                let mut w = StoreWriter::new();
                w.add_field(1, "alpha", &data, shape, chunk, &codec).unwrap();
                if v >= 3 {
                    w.add_field(2, "beta", &data[..256], FieldShape::d3(8, 8, 4), [4, 4, 4], &codec)
                        .unwrap();
                }
                w.finish().unwrap()
            })
            .collect()
    })[variant]
}

/// Opens an archive image and extracts every field. Fragment corruption
/// only surfaces at read time (chunk CRCs), so fuzz checks must drive
/// both the open path and the read path.
fn open_and_extract_all(bytes: &[u8]) -> foresight_util::Result<usize> {
    let reader = StoreReader::from_bytes(bytes.to_vec())?;
    let keys: Vec<(u32, String)> =
        reader.fields().iter().map(|f| (f.snapshot, f.name.clone())).collect();
    let mut total = 0usize;
    for (snapshot, name) in keys {
        let (values, _) = reader.extract(snapshot, &name)?;
        total += values.len();
    }
    Ok(total)
}

/// Seals a hand-built directory into a syntactically perfect archive:
/// correct superblock CRC, correct manifest SHA-256, correct directory
/// CRC. Only semantic validation can reject it.
fn forge_archive(fields: Vec<FieldEntry>, frag_bytes: usize) -> Vec<u8> {
    let dir = Directory { fields }.encode();
    let dir_offset = SUPERBLOCK_LEN + frag_bytes;
    let sb = Superblock {
        version: VERSION,
        dir_offset: dir_offset as u64,
        dir_len: dir.len() as u64,
        archive_len: (dir_offset + dir.len()) as u64,
        dir_sha256: sha256(&dir),
    };
    let mut out = sb.encode();
    out.extend_from_slice(&vec![0xAAu8; frag_bytes]);
    out.extend_from_slice(&dir);
    out
}

fn forged_entry(chunks: Vec<ChunkRef>) -> FieldEntry {
    FieldEntry {
        snapshot: 1,
        name: "forged".into(),
        grid: ChunkGrid::new(FieldShape::d3(8, 8, 8), [4, 4, 8]).unwrap(),
        codec: CodecKind::Sz,
        bound: BoundSpec { tag: 0, value: 1e-3 },
        payload_sha256: [0u8; 32],
        chunks,
    }
}

#[test]
fn forged_overlapping_fragments_rejected() {
    // Two chunk refs aliasing the same bytes — an amplification trick.
    let chunks = vec![
        ChunkRef { offset: 68, len: 100, crc32: 0 },
        ChunkRef { offset: 100, len: 100, crc32: 0 },
        ChunkRef { offset: 268, len: 100, crc32: 0 },
        ChunkRef { offset: 368, len: 100, crc32: 0 },
    ];
    let err = StoreReader::from_bytes(forge_archive(vec![forged_entry(chunks)], 400)).unwrap_err();
    assert!(err.to_string().contains("overlap"), "{err}");
}

#[test]
fn forged_out_of_bounds_fragment_rejected() {
    // Last chunk points past the fragment region into the directory.
    let chunks = vec![
        ChunkRef { offset: 68, len: 100, crc32: 0 },
        ChunkRef { offset: 168, len: 100, crc32: 0 },
        ChunkRef { offset: 268, len: 100, crc32: 0 },
        ChunkRef { offset: 468, len: 10_000, crc32: 0 },
    ];
    let err = StoreReader::from_bytes(forge_archive(vec![forged_entry(chunks)], 400)).unwrap_err();
    assert!(err.to_string().contains("fragment"), "{err}");
}

#[test]
fn forged_fragment_inside_superblock_rejected() {
    let chunks = vec![
        ChunkRef { offset: 0, len: 60, crc32: 0 },
        ChunkRef { offset: 168, len: 100, crc32: 0 },
        ChunkRef { offset: 268, len: 100, crc32: 0 },
        ChunkRef { offset: 368, len: 100, crc32: 0 },
    ];
    assert!(StoreReader::from_bytes(forge_archive(vec![forged_entry(chunks)], 400)).is_err());
}

#[test]
fn forged_wrong_chunk_count_rejected() {
    // The 4x4x8 grid over 8x8x8 has 4 chunks; list only 2.
    let chunks = vec![
        ChunkRef { offset: 68, len: 100, crc32: 0 },
        ChunkRef { offset: 168, len: 100, crc32: 0 },
    ];
    let err = StoreReader::from_bytes(forge_archive(vec![forged_entry(chunks)], 400)).unwrap_err();
    assert!(err.to_string().contains("chunks"), "{err}");
}

#[test]
fn forged_chunk_crc_fails_at_read_not_open() {
    // A structurally valid archive whose fragment bytes (0xAA filler)
    // do not match the chunk CRCs: opening succeeds (the directory is
    // sound), but every read must fail closed on the chunk CRC.
    let chunks = (0..4)
        .map(|i| ChunkRef { offset: 68 + i * 100, len: 100, crc32: 0xDEAD_BEEF })
        .collect();
    let archive = forge_archive(vec![forged_entry(chunks)], 400);
    let reader = StoreReader::from_bytes(archive).unwrap();
    let err = reader.extract(1, "forged").unwrap_err();
    assert!(err.to_string().contains("CRC"), "{err}");
    assert!(reader.verify().is_err());
}

#[test]
fn empty_and_tiny_inputs_rejected() {
    for len in 0..SUPERBLOCK_LEN {
        assert!(StoreReader::from_bytes(vec![0x46; len]).is_err(), "len {len} accepted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a valid archive must be rejected at open:
    /// the superblock pins the exact archive length.
    #[test]
    fn truncation_always_errors(variant in 0usize..VARIANTS, cut_sel in any::<u32>()) {
        let archive = make_archive(variant);
        let cut = cut_sel as usize % archive.len();
        prop_assert!(StoreReader::from_bytes(archive[..cut].to_vec()).is_err());
    }

    /// Every single-bit flip lands in a region covered by the superblock
    /// CRC, the manifest SHA-256, the directory CRC, or a chunk CRC —
    /// so open-plus-extract-everything must error, never return altered
    /// values as valid.
    #[test]
    fn bit_flip_fails_closed(variant in 0usize..VARIANTS, flip_sel in any::<u32>()) {
        let archive = make_archive(variant);
        let mut bad = archive.to_vec();
        let bit = flip_sel as usize % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open_and_extract_all(&bad).is_err(), "flip at bit {} accepted", bit);
    }

    /// Overwriting a window with arbitrary bytes must not panic; if the
    /// window changed anything, some integrity layer rejects it.
    #[test]
    fn window_rewrite_never_panics(
        variant in 0usize..VARIANTS,
        start_sel in any::<u32>(),
        junk in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let archive = make_archive(variant);
        let mut bad = archive.to_vec();
        let start = start_sel as usize % bad.len();
        let end = (start + junk.len()).min(bad.len());
        bad[start..end].copy_from_slice(&junk[..end - start]);
        if bad == archive {
            prop_assert!(open_and_extract_all(&bad).is_ok());
        } else {
            prop_assert!(open_and_extract_all(&bad).is_err());
        }
    }

    /// Splicing the head of one valid archive onto the tail of another
    /// (arbitrary cut points) must fail closed.
    #[test]
    fn splice_never_panics(
        va in 0usize..VARIANTS, vb in 0usize..VARIANTS,
        cut_sel in any::<u32>(),
    ) {
        let a = make_archive(va);
        let b = make_archive(vb);
        let cut = cut_sel as usize % a.len();
        let mut spliced = a[..cut].to_vec();
        spliced.extend_from_slice(&b[cut.min(b.len())..]);
        if spliced != a && spliced != b {
            prop_assert!(open_and_extract_all(&spliced).is_err());
        }
    }

    /// Raw garbage of any size must be rejected without panicking and
    /// without allocating past the input (the superblock's sizes must
    /// reconcile with the bytes actually present before any allocation).
    #[test]
    fn garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(StoreReader::from_bytes(junk).is_err());
    }

    /// Garbage behind a valid-looking superblock (correct magic,
    /// version, CRC, self-consistent sizes) still fails closed on the
    /// manifest digest, and the directory allocation stays bounded by
    /// the declared (true) archive length.
    #[test]
    fn forged_superblock_over_garbage_errors(body in prop::collection::vec(any::<u8>(), 1..512)) {
        let sb = Superblock {
            version: VERSION,
            dir_offset: SUPERBLOCK_LEN as u64,
            dir_len: body.len() as u64,
            archive_len: (SUPERBLOCK_LEN + body.len()) as u64,
            dir_sha256: [0u8; 32], // almost surely not sha256(body)
        };
        let mut bytes = sb.encode();
        bytes.extend_from_slice(&body);
        if sha256(&body) != [0u8; 32] {
            prop_assert!(StoreReader::from_bytes(bytes).is_err());
        }
    }
}
