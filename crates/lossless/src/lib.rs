//! Lossless floating-point compression baselines.
//!
//! The paper's background (§II-A) frames the case for lossy compression
//! with the observation that lossless floating-point compressors like FPC
//! and FPZIP "can provide only compression ratios typically lower than
//! 2:1 for dense scientific data because of the significant randomness of
//! the ending mantissa bits". This crate implements both families so the
//! claim is reproducible on the synthetic datasets:
//!
//! - [`fpc`] — Burtscher & Ratanaworabhan's FPC: FCM and DFCM hash
//!   predictors race per value, the winner's prediction is XORed with the
//!   truth, and the leading-zero-byte count plus residual bytes are
//!   emitted.
//! - [`fpz`] — an fpzip-flavoured codec: floats are mapped to
//!   sign-magnitude-ordered integers, predicted with a Lorenzo stencil,
//!   and the residuals' leading-zero-bit counts are entropy-coded.
//!
//! Both are exact: `decompress(compress(x)) == x` bit for bit.

#![forbid(unsafe_code)]

pub mod fpc;
pub mod fpz;

pub use fpc::{fpc_compress, fpc_decompress};
pub use fpz::{fpz_compress, fpz_decompress};

/// Compression ratio helper (original f32 bytes / stream bytes).
pub fn ratio_f32(n_values: usize, stream_len: usize) -> f64 {
    if stream_len == 0 {
        return f64::INFINITY;
    }
    (n_values * 4) as f64 / stream_len as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratio_math() {
        assert!((super::ratio_f32(100, 200) - 2.0).abs() < 1e-12);
    }
}
