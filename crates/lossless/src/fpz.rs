//! fpzip-flavoured lossless codec: Lorenzo prediction in a monotonic
//! integer domain plus entropy-coded residual magnitudes.
//!
//! fpzip (Lindstrom & Isenburg 2006) predicts each value with a Lorenzo
//! stencil, maps the float and its prediction to sign-magnitude-ordered
//! integers, and entropy-codes the difference. This implementation keeps
//! that structure with simpler coding: the residual's group (leading-zero
//! count class) goes through a canonical Huffman code built per stream
//! and the remaining significant bits are written raw. Exact roundtrip.

use foresight_util::bits::{BitReader, BitWriter};
use foresight_util::{Error, Result};
use lossy_sz::huffman::{histogram, Codebook};

/// Maps a float to an integer that preserves numeric order (the classic
/// bijective total-order trick: flip all bits of negatives, flip only the
/// sign bit of non-negatives). -0.0 and +0.0 map to adjacent distinct
/// keys, so the roundtrip is bit-exact for every input including NaNs.
#[inline]
fn f32_to_ordered(v: f32) -> i64 {
    let b = v.to_bits();
    let key = if b >> 31 == 1 { !b } else { b ^ 0x8000_0000 };
    key as i64
}

/// Inverse of [`f32_to_ordered`]; `x` must be in `[0, 2^32)`.
#[inline]
fn ordered_to_f32(x: i64) -> f32 {
    let key = x as u32;
    let b = if key >> 31 == 1 { key ^ 0x8000_0000 } else { !key };
    f32::from_bits(b)
}

/// Zig-zag mapping of a signed residual to unsigned.
#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Logical dimensions, x fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpzDims {
    /// Extent along x.
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z.
    pub nz: usize,
}

impl FpzDims {
    /// 1-D stream.
    pub fn d1(n: usize) -> Self {
        Self { nx: n, ny: 1, nz: 1 }
    }

    /// 3-D grid.
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Lorenzo prediction over the ordered-integer domain.
fn predict(vals: &[i64], d: FpzDims, x: usize, y: usize, z: usize) -> i64 {
    let at = |dx: usize, dy: usize, dz: usize| -> i64 {
        if x < dx || y < dy || z < dz {
            0
        } else {
            vals[(x - dx) + d.nx * ((y - dy) + d.ny * (z - dz))]
        }
    };
    at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) - at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1)
        + at(1, 1, 1)
}

/// Compresses a float grid losslessly.
pub fn fpz_compress(data: &[f32], dims: FpzDims) -> Result<Vec<u8>> {
    if data.len() != dims.len() {
        return Err(Error::invalid(format!(
            "data length {} does not match dims {:?}",
            data.len(),
            dims
        )));
    }
    // Pass 1: residuals (as zig-zag magnitudes) and their bit-length class.
    let mut ordered = vec![0i64; data.len()];
    let mut resid = vec![0u64; data.len()];
    let mut classes = vec![0u32; data.len()];
    let mut idx = 0;
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let v = f32_to_ordered(data[idx]);
                let p = predict(&ordered, dims, x, y, z);
                ordered[idx] = v;
                let r = zigzag(v - p);
                resid[idx] = r;
                classes[idx] = 64 - r.leading_zeros(); // 0..=64 significant bits
                idx += 1;
            }
        }
    }
    // Entropy-code the class, then raw low bits (class-1 bits; the top
    // significant bit is implied by the class).
    let book = Codebook::from_frequencies(&histogram(&classes))?;
    let mut w = BitWriter::with_capacity(data.len() * 2);
    for i in 0..data.len() {
        book.encode(classes[i], &mut w)?;
        let c = classes[i];
        if c > 1 {
            w.write_bits(resid[i], c - 1);
        }
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(b"FPZL");
    for e in [dims.nx, dims.ny, dims.nz] {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    book.serialize(&mut out);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decompresses a stream produced by [`fpz_compress`]; bit-exact.
pub fn fpz_decompress(stream: &[u8]) -> Result<(Vec<f32>, FpzDims)> {
    if stream.len() < 28 || &stream[..4] != b"FPZL" {
        return Err(Error::corrupt("not an FPZL stream"));
    }
    let rd = |o: usize| u64::from_le_bytes(stream[o..o + 8].try_into().unwrap()) as usize;
    let dims = FpzDims { nx: rd(4), ny: rd(12), nz: rd(20) };
    if dims.len() > (1 << 33) {
        return Err(Error::corrupt("implausible dimensions"));
    }
    let (book, used) = Codebook::deserialize(&stream[28..])?;
    let mut r = BitReader::new(&stream[28 + used..]);
    let mut ordered = vec![0i64; dims.len()];
    let mut out = Vec::with_capacity(dims.len());
    let mut idx = 0;
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let c = book.decode(&mut r)?;
                if c > 64 {
                    return Err(Error::corrupt("fpz class out of range"));
                }
                let mag = match c {
                    0 => 0u64,
                    1 => 1,
                    _ => (1u64 << (c - 1)) | r.read_bits(c - 1)?,
                };
                let p = predict(&ordered, dims, x, y, z);
                let v = p + unzigzag(mag);
                // Keys live in [0, 2^32); anything else is corruption.
                if !(0..(1i64 << 32)).contains(&v) {
                    return Err(Error::corrupt("fpz reconstruction out of range"));
                }
                ordered[idx] = v;
                out.push(ordered_to_f32(v));
                idx += 1;
            }
        }
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32], dims: FpzDims) -> usize {
        let c = fpz_compress(data, dims).unwrap();
        let (d, rdims) = fpz_decompress(&c).unwrap();
        assert_eq!(rdims, dims);
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        c.len()
    }

    #[test]
    fn ordered_mapping_is_monotonic_and_invertible() {
        let vals = [-1e30f32, -1.0, -1e-30, -0.0, 0.0, 1e-30, 1.0, 1e30];
        let mapped: Vec<i64> = vals.iter().map(|&v| f32_to_ordered(v)).collect();
        for w in mapped.windows(2) {
            assert!(w[0] <= w[1], "ordering broken: {mapped:?}");
        }
        for &v in &vals {
            assert_eq!(ordered_to_f32(f32_to_ordered(v)).to_bits(), v.to_bits());
        }
        // NaN also roundtrips (ordering irrelevant).
        let n = f32::NAN;
        assert_eq!(ordered_to_f32(f32_to_ordered(n)).to_bits(), n.to_bits());
    }

    #[test]
    fn zigzag_roundtrip() {
        for x in [-5i64, -1, 0, 1, 7, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn smooth_3d_grid_compresses_well() {
        let n = 16usize;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| {
                let x = (i % n) as f32;
                let y = ((i / n) % n) as f32;
                let z = (i / (n * n)) as f32;
                x * 2.0 + y * 3.0 + z * 4.0
            })
            .collect();
        let clen = roundtrip(&data, FpzDims::d3(n, n, n));
        let ratio = (data.len() * 4) as f64 / clen as f64;
        assert!(ratio > 2.0, "linear field should compress well, got {ratio}");
    }

    #[test]
    fn noisy_data_stays_under_two_to_one() {
        let mut s = 88172645463325252u64;
        let data: Vec<f32> = (0..32 * 32 * 32)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / 16777216.0).exp()
            })
            .collect();
        let clen = roundtrip(&data, FpzDims::d3(32, 32, 32));
        let ratio = (data.len() * 4) as f64 / clen as f64;
        assert!(ratio < 2.5, "paper's <2:1-ish claim, got {ratio}");
    }

    #[test]
    fn special_values_roundtrip() {
        let data = vec![1.0f32, f32::NAN, -0.0, f32::INFINITY, -1.5, f32::NEG_INFINITY, 0.0, 2.0];
        roundtrip(&data, FpzDims::d1(8));
    }

    #[test]
    fn corrupt_streams_error() {
        let data = vec![1.0f32; 64];
        let c = fpz_compress(&data, FpzDims::d1(64)).unwrap();
        assert!(fpz_decompress(&c[..10]).is_err());
        assert!(fpz_decompress(b"nope").is_err());
        let mut bad = c;
        bad[0] = b'X';
        assert!(fpz_decompress(&bad).is_err());
    }

    #[test]
    fn dims_validation() {
        assert!(fpz_compress(&[0.0; 10], FpzDims::d3(2, 2, 2)).is_err());
    }
}
