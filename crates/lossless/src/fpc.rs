//! FPC: fast lossless compression of floating-point streams
//! (Burtscher & Ratanaworabhan, IEEE TC 2008).
//!
//! Two table-based predictors race for every value: FCM (finite context
//! method — hash of recent values) and DFCM (the same over deltas). The
//! better prediction is XORed with the true bits; the result's leading
//! zero bytes are counted and only a small header plus the non-zero tail
//! is stored. Smooth data predicts well and collapses to a few bytes per
//! value; random mantissas degrade gracefully toward 1:1.
//!
//! This implementation works on `f32` streams (the datasets' type), with
//! a 4-bit header per value: 1 bit predictor selector + 3 bits leading-
//! zero-byte count (0..=4; 4 means the prediction was exact and no tail
//! bytes follow).

use foresight_util::{Error, Result};

const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

struct Predictors {
    fcm: Vec<u32>,
    dfcm: Vec<u32>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u32,
}

impl Predictors {
    fn new() -> Self {
        Self {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns the two predictions for the next value.
    #[inline]
    fn predict(&self) -> (u32, u32) {
        (self.fcm[self.fcm_hash], self.dfcm[self.dfcm_hash].wrapping_add(self.last))
    }

    /// Folds the true value into both predictor tables.
    #[inline]
    fn update(&mut self, actual: u32) {
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = (((self.fcm_hash << 6) ^ (actual >> 16) as usize) & (TABLE_SIZE - 1))
            .min(TABLE_SIZE - 1);
        let delta = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = (((self.dfcm_hash << 2) ^ (delta >> 12) as usize) & (TABLE_SIZE - 1))
            .min(TABLE_SIZE - 1);
        self.last = actual;
    }
}

#[inline]
fn leading_zero_bytes(x: u32) -> u32 {
    x.leading_zeros() / 8 // 0..=4; 4 means a perfect prediction
}

/// Compresses an `f32` slice losslessly.
///
/// Stream layout: `u64` count, then for each pair of values a header byte
/// (two 4-bit codes), then all residual tails in order.
pub fn fpc_compress(data: &[f32]) -> Vec<u8> {
    let mut p = Predictors::new();
    let mut headers = Vec::with_capacity(data.len().div_ceil(2));
    let mut tails: Vec<u8> = Vec::with_capacity(data.len() * 3);
    let mut half = 0u8;
    for (i, &v) in data.iter().enumerate() {
        let bits = v.to_bits();
        let (f, d) = p.predict();
        let (sel, resid) = {
            let xf = bits ^ f;
            let xd = bits ^ d;
            if leading_zero_bytes(xf) >= leading_zero_bytes(xd) {
                (0u8, xf)
            } else {
                (1u8, xd)
            }
        };
        let lzb = leading_zero_bytes(resid);
        let nbytes = 4 - lzb as usize;
        let code = (sel << 3) | (lzb as u8 & 0b111);
        if i % 2 == 0 {
            half = code;
        } else {
            headers.push(half << 4 | code);
        }
        // Little-endian tail of the residual's low `nbytes` bytes.
        let le = resid.to_le_bytes();
        tails.extend_from_slice(&le[..nbytes]);
        p.update(bits);
    }
    if data.len() % 2 == 1 {
        headers.push(half << 4);
    }
    let mut out = Vec::with_capacity(8 + headers.len() + tails.len());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&headers);
    out.extend_from_slice(&tails);
    out
}

/// Decompresses a stream produced by [`fpc_compress`]; bit-exact.
pub fn fpc_decompress(stream: &[u8]) -> Result<Vec<f32>> {
    if stream.len() < 8 {
        return Err(Error::corrupt("fpc stream shorter than header"));
    }
    let n = u64::from_le_bytes(stream[..8].try_into().unwrap()) as usize;
    let header_len = n.div_ceil(2);
    if stream.len() < 8 + header_len {
        return Err(Error::corrupt("fpc header table truncated"));
    }
    let headers = &stream[8..8 + header_len];
    let mut tail_pos = 8 + header_len;
    let mut p = Predictors::new();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = headers[i / 2];
        let code = if i % 2 == 0 { byte >> 4 } else { byte & 0x0f };
        let sel = (code >> 3) & 1;
        let lzb = (code & 0b111) as usize;
        if lzb > 4 {
            return Err(Error::corrupt("fpc header code out of range"));
        }
        let nbytes = 4 - lzb;
        if stream.len() < tail_pos + nbytes {
            return Err(Error::corrupt("fpc residual tail truncated"));
        }
        let mut le = [0u8; 4];
        le[..nbytes].copy_from_slice(&stream[tail_pos..tail_pos + nbytes]);
        tail_pos += nbytes;
        let resid = u32::from_le_bytes(le);
        let (f, d) = p.predict();
        let bits = resid ^ if sel == 0 { f } else { d };
        out.push(f32::from_bits(bits));
        p.update(bits);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f32]) -> usize {
        let c = fpc_compress(data);
        let d = fpc_decompress(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exactness violated");
        }
        c.len()
    }

    #[test]
    fn empty_and_small() {
        roundtrip(&[]);
        roundtrip(&[1.0]);
        roundtrip(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn special_values_survive() {
        roundtrip(&[0.0, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, f32::MIN_POSITIVE]);
    }

    #[test]
    fn constant_stream_compresses_hard() {
        let data = vec![std::f32::consts::PI; 10_000];
        let clen = roundtrip(&data);
        // Header (~0.5 B/value) only; tails vanish after warm-up.
        assert!(clen < data.len(), "clen={clen}");
    }

    #[test]
    fn smooth_stream_beats_raw() {
        let data: Vec<f32> = (0..50_000).map(|i| i as f32).collect();
        let clen = roundtrip(&data);
        assert!(clen < data.len() * 4, "clen={clen}");
    }

    #[test]
    fn random_mantissas_give_paper_like_low_ratio() {
        // The paper's §II-A point: dense scientific data with noisy
        // mantissas stays under ~2:1.
        let mut x = 0x2545F491u32;
        let data: Vec<f32> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                // Confined exponent range but random mantissa bits.
                f32::from_bits(0x3F00_0000 | (x & 0x007F_FFFF))
            })
            .collect();
        let clen = roundtrip(&data);
        let ratio = (data.len() * 4) as f64 / clen as f64;
        assert!(ratio < 2.0, "ratio {ratio} should be < 2 on noisy mantissas");
        assert!(ratio > 1.0, "ratio {ratio} should still save something");
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(fpc_decompress(&[]).is_err());
        assert!(fpc_decompress(&[0; 4]).is_err());
        let c = fpc_compress(&[1.0, 2.0, 3.0, 4.0]);
        assert!(fpc_decompress(&c[..c.len() - 1]).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(fpc_decompress(&huge).is_err());
    }
}
