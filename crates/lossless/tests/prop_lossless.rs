//! Property tests: the lossless baselines must be bit-exact on arbitrary
//! floats, including NaN payloads and signed zeros.

use lossless_fp::{fpc_compress, fpc_decompress, fpz_compress, fpz_decompress};
use lossless_fp::fpz::FpzDims;
use proptest::prelude::*;

fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpc_bit_exact(data in prop::collection::vec(any_f32_bits(), 0..2000)) {
        let c = fpc_compress(&data);
        let d = fpc_decompress(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fpz_bit_exact(data in prop::collection::vec(any_f32_bits(), 1..1500)) {
        let dims = FpzDims::d1(data.len());
        let c = fpz_compress(&data, dims).unwrap();
        let (d, _) = fpz_decompress(&c).unwrap();
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fpz_3d_bit_exact(nx in 1usize..8, ny in 1usize..8, nz in 1usize..8, seed in any::<u32>()) {
        let n = nx * ny * nz;
        let data: Vec<f32> = (0..n)
            .map(|i| f32::from_bits((i as u32).wrapping_mul(seed | 1)))
            .collect();
        let dims = FpzDims::d3(nx, ny, nz);
        let c = fpz_compress(&data, dims).unwrap();
        let (d, rdims) = fpz_decompress(&c).unwrap();
        prop_assert_eq!(rdims, dims);
        for (a, b) in data.iter().zip(&d) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_errors_not_panics(cut_frac in 0.0f64..0.99) {
        let data: Vec<f32> = (0..300).map(|i| (i as f32 * 0.7).sin()).collect();
        let c = fpc_compress(&data);
        let cut = ((c.len() as f64) * cut_frac) as usize;
        prop_assert!(fpc_decompress(&c[..cut]).is_err());
        let c = fpz_compress(&data, FpzDims::d1(300)).unwrap();
        let cut = ((c.len() as f64) * cut_frac) as usize;
        // fpz may decode garbage-but-valid streams for some cuts of the
        // payload region; it must simply never panic.
        let _ = fpz_decompress(&c[..cut]);
    }
}
