//! Property tests: FFT algebraic identities on random inputs.

use cosmo_fft::{fft3_forward, fft3_inverse_real, fft_in_place, Complex, Direction, Grid3};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), len..=len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    /// inverse(forward(x)) == x for random complex signals.
    #[test]
    fn roundtrip_1d(log2n in 0u32..9, seed_idx in 0usize..4) {
        let n = 1usize << log2n;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (i + seed_idx * 131) as f64;
                Complex::new((t * 0.713).sin() * 1e3, (t * 1.37).cos() * 1e2)
            })
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward).unwrap();
        fft_in_place(&mut y, Direction::Inverse).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    /// Linearity: F(a*x + y) == a*F(x) + F(y).
    #[test]
    fn linearity(x in complex_vec(64), y in complex_vec(64), a in -10.0f64..10.0) {
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft_in_place(&mut fx, Direction::Forward).unwrap();
        fft_in_place(&mut fy, Direction::Forward).unwrap();
        let mut combo: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&xi, &yi)| xi.scale(a) + yi)
            .collect();
        fft_in_place(&mut combo, Direction::Forward).unwrap();
        for i in 0..64 {
            let expect = fx[i].scale(a) + fy[i];
            prop_assert!((combo[i].re - expect.re).abs() < 1e-3);
            prop_assert!((combo[i].im - expect.im).abs() < 1e-3);
        }
    }

    /// Parseval: sum |x|^2 == (1/N) sum |X|^2.
    #[test]
    fn parseval_1d(x in complex_vec(128)) {
        let time: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let mut fx = x;
        fft_in_place(&mut fx, Direction::Forward).unwrap();
        let freq: f64 = fx.iter().map(|c| c.norm_sqr()).sum::<f64>() / 128.0;
        let scale = time.abs().max(1.0);
        prop_assert!((time - freq).abs() / scale < 1e-9);
    }

    /// 3-D roundtrip on real fields.
    #[test]
    fn roundtrip_3d(vals in prop::collection::vec(-1e5f64..1e5, 64..=64)) {
        let grid = Grid3::cube(4);
        let spec = fft3_forward(&vals, grid).unwrap();
        let back = fft3_inverse_real(&spec, grid).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
