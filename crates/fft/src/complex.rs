//! Minimal double-precision complex arithmetic.
//!
//! Only the operations the FFT and the spectral solvers need; no attempt at
//! full `num-complex` parity.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i*im` in `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + i*im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 0.5);
        assert!(close(a + b - b, a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a * b, b * a));
        assert!(close(-a + a, Complex::ZERO));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex::real(25.0)));
    }

    #[test]
    fn cis_unit_circle() {
        let i = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(close(i, Complex::new(6.123233995736766e-17, 1.0)) || i.im == 1.0);
        let m1 = Complex::cis(std::f64::consts::PI);
        assert!((m1.re + 1.0).abs() < 1e-12 && m1.im.abs() < 1e-12);
    }
}
