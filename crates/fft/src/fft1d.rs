//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The transform is unnormalized in the forward direction and applies the
//! `1/n` factor on the inverse, so `inverse(forward(x)) == x`. A [`Fft`]
//! planner caches the bit-reversal permutation and twiddle factors for a
//! fixed power-of-two size; the free function [`fft_in_place`] builds a
//! throwaway plan for one-off use.

use crate::complex::Complex;
use foresight_util::{Error, Result};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = sum_n x_n e^{-2 pi i k n / N}` (no normalization).
    Forward,
    /// `x_n = (1/N) sum_k X_k e^{+2 pi i k n / N}`.
    Inverse,
}

/// A cached FFT plan for a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Forward twiddles for each butterfly stage, flattened stage-major:
    /// stage `s` (half-size `m = 2^s`) stores `m` twiddles.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Builds a plan for length `n` (must be a power of two, `n >= 1`).
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(Error::invalid(format!("FFT length {n} is not a power of two")));
        }
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.max(1) - 1));
        }
        if log2n == 0 {
            rev[0] = 0;
        }
        // Twiddles: for each stage with half-width m, w_j = e^{-i pi j / m}.
        let mut twiddles = Vec::new();
        let mut m = 1;
        while m < n {
            for j in 0..m {
                twiddles.push(Complex::cis(-std::f64::consts::PI * j as f64 / m as f64));
            }
            m *= 2;
        }
        Ok(Self { n, rev, twiddles })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transforms `data` in place; `data.len()` must equal the plan length.
    pub fn process(&self, data: &mut [Complex], dir: Direction) -> Result<()> {
        if data.len() != self.n {
            return Err(Error::invalid(format!(
                "buffer length {} does not match plan length {}",
                data.len(),
                self.n
            )));
        }
        let n = self.n;
        if n <= 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterfly stages with cached twiddles.
        let mut m = 1;
        let mut toff = 0;
        while m < n {
            let tw = &self.twiddles[toff..toff + m];
            let step = 2 * m;
            let mut k = 0;
            while k < n {
                for j in 0..m {
                    let w = match dir {
                        Direction::Forward => tw[j],
                        Direction::Inverse => tw[j].conj(),
                    };
                    let t = w * data[k + j + m];
                    let u = data[k + j];
                    data[k + j] = u + t;
                    data[k + j + m] = u - t;
                }
                k += step;
            }
            toff += m;
            m = step;
        }
        if dir == Direction::Inverse {
            let inv_n = 1.0 / n as f64;
            for v in data.iter_mut() {
                *v = v.scale(inv_n);
            }
        }
        Ok(())
    }
}

/// One-shot in-place FFT of a power-of-two-length buffer.
pub fn fft_in_place(data: &mut [Complex], dir: Direction) -> Result<()> {
    Fft::new(data.len())?.process(data, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    acc += v * Complex::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(3).is_err());
        assert!(Fft::new(12).is_err());
        assert!(Fft::new(8).is_ok());
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 1.1).cos()))
                .collect();
            let mut y = x.clone();
            fft_in_place(&mut y, Direction::Forward).unwrap();
            assert_close(&y, &naive_dft(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_identity() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i * i % 17) as f64 - 8.0, (i % 5) as f64))
            .collect();
        let mut y = x.clone();
        let plan = Fft::new(n).unwrap();
        plan.process(&mut y, Direction::Forward).unwrap();
        plan.process(&mut y, Direction::Inverse).unwrap();
        assert_close(&y, &x, 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        fft_in_place(&mut x, Direction::Forward).unwrap();
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_frequency_bin() {
        // x_n = e^{2 pi i 3 n / N} should put all energy in bin 3.
        let n = 64;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64))
            .collect();
        fft_in_place(&mut x, Direction::Forward).unwrap();
        for (k, v) in x.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-9, "bin {k}: {v:?}");
        }
    }

    #[test]
    fn mismatched_buffer_errors() {
        let plan = Fft::new(8).unwrap();
        let mut buf = vec![Complex::ZERO; 4];
        assert!(plan.process(&mut buf, Direction::Forward).is_err());
    }
}
