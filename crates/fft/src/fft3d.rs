//! 3-D transforms built from 1-D line transforms.
//!
//! Lines along x are contiguous and transform via `par_chunks_mut`. Lines
//! along y and z are strided; they are processed in parallel through a raw
//! pointer wrapper — distinct lines never alias, which makes the unsafe
//! parallel scatter sound (see the SAFETY comments).

// The crate denies unsafe_code; this module is the audited exception
// (disjoint strided-line scatter that safe chunking cannot express).
#![allow(unsafe_code)]

use crate::complex::Complex;
use crate::fft1d::{Direction, Fft};
use crate::grid::Grid3;
use foresight_util::{Error, Result};
use rayon::prelude::*;

/// Pointer wrapper that lets rayon workers write disjoint strided lines.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex);
// SAFETY: every parallel task derived from a `SendPtr` touches a disjoint
// set of indices (one grid line), so concurrent access never aliases.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Transforms every line along one axis.
fn transform_axis(data: &mut [Complex], grid: Grid3, axis: usize, dir: Direction) -> Result<()> {
    let (n, stride, lines): (usize, usize, Vec<usize>) = match axis {
        0 => {
            // Contiguous: handled with safe chunking below.
            let plan = Fft::new(grid.nx)?;
            data.par_chunks_mut(grid.nx)
                .try_for_each(|line| plan.process(line, dir))?;
            return Ok(());
        }
        1 => {
            let mut starts = Vec::with_capacity(grid.nx * grid.nz);
            for z in 0..grid.nz {
                for x in 0..grid.nx {
                    starts.push(grid.index(x, 0, z));
                }
            }
            (grid.ny, grid.nx, starts)
        }
        2 => {
            let mut starts = Vec::with_capacity(grid.nx * grid.ny);
            for y in 0..grid.ny {
                for x in 0..grid.nx {
                    starts.push(grid.index(x, y, 0));
                }
            }
            (grid.nz, grid.nx * grid.ny, starts)
        }
        _ => return Err(Error::invalid("axis must be 0, 1, or 2")),
    };
    let plan = Fft::new(n)?;
    let ptr = SendPtr(data.as_mut_ptr());
    lines.par_iter().try_for_each_init(
        || vec![Complex::ZERO; n],
        |scratch, &start| -> Result<()> {
            let p = ptr;
            // SAFETY: lines with distinct `start` values index disjoint cells
            // (start enumerates all (x,z) or (x,y) combinations once; the
            // line then varies only the remaining coordinate).
            unsafe {
                for (j, s) in scratch.iter_mut().enumerate() {
                    *s = *p.0.add(start + j * stride);
                }
                plan.process(scratch, dir)?;
                for (j, s) in scratch.iter().enumerate() {
                    *p.0.add(start + j * stride) = *s;
                }
            }
            Ok(())
        },
    )
}

/// Validates that `grid` matches `len` and is FFT-compatible.
fn check(grid: Grid3, len: usize) -> Result<()> {
    if grid.len() != len {
        return Err(Error::invalid(format!(
            "grid {grid:?} has {} cells but buffer holds {len}",
            grid.len()
        )));
    }
    if !grid.is_pow2() {
        return Err(Error::invalid(format!("grid {grid:?} extents must be powers of two")));
    }
    Ok(())
}

/// Forward 3-D FFT of a real field; returns the full complex cube.
pub fn fft3_forward(field: &[f64], grid: Grid3) -> Result<Vec<Complex>> {
    check(grid, field.len())?;
    let mut data: Vec<Complex> = field.iter().map(|&v| Complex::real(v)).collect();
    fft3_in_place(&mut data, grid, Direction::Forward)?;
    Ok(data)
}

/// In-place 3-D FFT of a complex cube.
pub fn fft3_in_place(data: &mut [Complex], grid: Grid3, dir: Direction) -> Result<()> {
    check(grid, data.len())?;
    transform_axis(data, grid, 0, dir)?;
    transform_axis(data, grid, 1, dir)?;
    transform_axis(data, grid, 2, dir)?;
    Ok(())
}

/// Inverse 3-D FFT returning the complex cube.
pub fn fft3_inverse(spectrum: &[Complex], grid: Grid3) -> Result<Vec<Complex>> {
    check(grid, spectrum.len())?;
    let mut data = spectrum.to_vec();
    fft3_in_place(&mut data, grid, Direction::Inverse)?;
    Ok(data)
}

/// Inverse 3-D FFT of a spectrum known to come from a real field; returns
/// the real parts (imaginary residue is numerical noise).
pub fn fft3_inverse_real(spectrum: &[Complex], grid: Grid3) -> Result<Vec<f64>> {
    Ok(fft3_inverse(spectrum, grid)?.into_iter().map(|c| c.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_real_field() {
        let grid = Grid3::cube(8);
        let field: Vec<f64> = (0..grid.len()).map(|i| ((i * 7919) % 101) as f64 - 50.0).collect();
        let spec = fft3_forward(&field, grid).unwrap();
        let back = fft3_inverse_real(&spec, grid).unwrap();
        for (a, b) in field.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let grid = Grid3::new(4, 8, 2);
        let field: Vec<f64> = (0..grid.len()).map(|i| i as f64).collect();
        let spec = fft3_forward(&field, grid).unwrap();
        let sum: f64 = field.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn plane_wave_lands_in_single_bin() {
        let grid = Grid3::cube(8);
        let mut field = vec![0.0f64; grid.len()];
        // cos wave along y with frequency 2.
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    field[grid.index(x, y, z)] =
                        (2.0 * std::f64::consts::PI * 2.0 * y as f64 / 8.0).cos();
                }
            }
        }
        let spec = fft3_forward(&field, grid).unwrap();
        let expected = grid.len() as f64 / 2.0; // split between +2 and -2 bins
        let hit1 = grid.index(0, 2, 0);
        let hit2 = grid.index(0, 6, 0);
        assert!((spec[hit1].re - expected).abs() < 1e-9);
        assert!((spec[hit2].re - expected).abs() < 1e-9);
        for (i, c) in spec.iter().enumerate() {
            if i != hit1 && i != hit2 {
                assert!(c.abs() < 1e-8, "leakage at {i}: {c:?}");
            }
        }
    }

    #[test]
    fn hermitian_symmetry_for_real_input() {
        let grid = Grid3::cube(4);
        let field: Vec<f64> = (0..grid.len()).map(|i| ((i * 31) % 13) as f64).collect();
        let spec = fft3_forward(&field, grid).unwrap();
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    let a = spec[grid.index(x, y, z)];
                    let b = spec[grid.index((4 - x) % 4, (4 - y) % 4, (4 - z) % 4)];
                    assert!((a.re - b.re).abs() < 1e-9);
                    assert!((a.im + b.im).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn rejects_bad_grid() {
        assert!(fft3_forward(&[0.0; 27], Grid3::cube(3)).is_err());
        assert!(fft3_forward(&[0.0; 10], Grid3::cube(4)).is_err());
    }

    #[test]
    fn parseval_energy_conservation() {
        let grid = Grid3::cube(8);
        let field: Vec<f64> =
            (0..grid.len()).map(|i| ((i as f64 * 0.7).sin() * 3.0) + 0.1).collect();
        let spec = fft3_forward(&field, grid).unwrap();
        let time_energy: f64 = field.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / grid.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }
}
