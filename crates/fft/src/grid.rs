//! Periodic 3-D grid bookkeeping: linear indexing and wavenumbers.
//!
//! Layout convention across the workspace: **x fastest**, i.e.
//! `index = x + nx*(y + ny*z)`. Wavenumber helpers map FFT bin indices to
//! signed frequencies and physical comoving wavenumbers for a box of side
//! `L`, which is what the power-spectrum analysis bins over.

/// Dimensions of a 3-D grid (often cubic, never zero-sized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Extent along x (fastest-varying).
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z (slowest-varying).
    pub nz: usize,
}

impl Grid3 {
    /// Creates a grid; panics on zero extents.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        Self { nx, ny, nz }
    }

    /// Cubic grid of side `n`.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True if the grid has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Grid3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Signed FFT frequency of bin `i` on an axis of length `n`:
    /// `0, 1, ..., n/2, -(n/2-1), ..., -1`.
    #[inline]
    pub fn freq(i: usize, n: usize) -> i64 {
        if i <= n / 2 {
            i as i64
        } else {
            i as i64 - n as i64
        }
    }

    /// Physical wavenumber components `2*pi*freq/L` of bin `(ix, iy, iz)`
    /// in a periodic box of side `box_len`.
    pub fn wavenumber(&self, ix: usize, iy: usize, iz: usize, box_len: f64) -> (f64, f64, f64) {
        let f = 2.0 * std::f64::consts::PI / box_len;
        (
            f * Self::freq(ix, self.nx) as f64,
            f * Self::freq(iy, self.ny) as f64,
            f * Self::freq(iz, self.nz) as f64,
        )
    }

    /// True when all extents are powers of two (FFT-compatible).
    pub fn is_pow2(&self) -> bool {
        self.nx.is_power_of_two() && self.ny.is_power_of_two() && self.nz.is_power_of_two()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = Grid3::new(4, 6, 8);
        assert_eq!(g.len(), 192);
        for idx in 0..g.len() {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    fn x_is_fastest() {
        let g = Grid3::new(8, 8, 8);
        assert_eq!(g.index(1, 0, 0), 1);
        assert_eq!(g.index(0, 1, 0), 8);
        assert_eq!(g.index(0, 0, 1), 64);
    }

    #[test]
    fn freq_mapping() {
        assert_eq!(Grid3::freq(0, 8), 0);
        assert_eq!(Grid3::freq(4, 8), 4);
        assert_eq!(Grid3::freq(5, 8), -3);
        assert_eq!(Grid3::freq(7, 8), -1);
    }

    #[test]
    fn wavenumber_scaling() {
        let g = Grid3::cube(8);
        let (kx, ky, kz) = g.wavenumber(1, 0, 7, 2.0 * std::f64::consts::PI);
        assert!((kx - 1.0).abs() < 1e-12);
        assert_eq!(ky, 0.0);
        assert!((kz + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pow2_detection() {
        assert!(Grid3::cube(64).is_pow2());
        assert!(!Grid3::new(64, 48, 64).is_pow2());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        Grid3::new(0, 4, 4);
    }
}
