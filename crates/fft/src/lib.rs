//! Fast Fourier transforms for the cosmology substrate.
//!
//! Two consumers drive the requirements: the particle-mesh gravity solver in
//! `nbody-sim` (forward + inverse 3-D transforms of real fields) and the
//! matter power spectrum analysis in `cosmo-analysis` (forward 3-D transform
//! plus wavenumber bookkeeping). Both operate on power-of-two periodic
//! grids, so an iterative radix-2 Cooley–Tukey transform is sufficient and
//! keeps the crate dependency-free.
//!
//! The 3-D transform applies the 1-D transform along x, y, then z lines and
//! parallelizes over lines with rayon.

// `deny` rather than `forbid`: [`fft3d`] opts back in for one audited
// raw-pointer scatter over disjoint strided grid lines (see the SAFETY
// comments there). Everything else in the crate is safe code.
#![deny(unsafe_code)]

pub mod complex;
pub mod fft1d;
pub mod fft3d;
pub mod grid;

pub use complex::Complex;
pub use fft1d::{fft_in_place, Direction, Fft};
pub use fft3d::{fft3_forward, fft3_inverse, fft3_inverse_real};
pub use grid::Grid3;
