//! HACC halo workflow: simulate a particle universe, write/read it in the
//! GIO-lite format, compress the positions at several bounds, and compare
//! Friends-of-Friends halo catalogs (paper Fig. 6 in miniature).
//!
//! ```text
//! cargo run --release --example hacc_halos
//! ```

use cosmo_analysis::{friends_of_friends, halo_count_ratio, linking_length_for};
use cosmo_data::{generate_hacc, gio, SynthOptions};
use foresight::cbench::{run_one, FieldData};
use foresight::codec::{CodecConfig, Shape};
use lossy_sz::SzConfig;

fn main() {
    let n = 32usize;
    let opts = SynthOptions { n_side: n, box_size: 256.0, seed: 4242, steps: 10 };
    println!("simulating universe ({}^3 particles)...", n);
    let snap = generate_hacc(&opts).expect("synthesis");

    // Round-trip through the GIO-lite file format, as the real pipeline
    // would (GenericIO in the paper).
    let path = std::env::temp_dir().join("hacc_example.gio");
    gio::write_hacc(&snap, &path).expect("write");
    let snap = gio::read_hacc(&path, opts.box_size).expect("read");
    std::fs::remove_file(&path).ok();
    println!("round-tripped {} particles through GIO-lite", snap.len());

    let b = linking_length_for(snap.len(), opts.box_size, 0.2);
    let orig = friends_of_friends(&snap.x, &snap.y, &snap.z, opts.box_size, b, 10).unwrap();
    println!("FoF (b = {b:.3}): {} halos in the original\n", orig.halos.len());

    println!("{:<12} {:>8} {:>8} {:>22}", "abs bound", "ratio", "halos", "count ratios by bin");
    for eb in [0.005f64, 0.05, 0.5, 2.0] {
        let cfg = CodecConfig::Sz(SzConfig::abs(eb));
        let mut recon = Vec::new();
        let mut ratio_acc = 0.0;
        for coord in [&snap.x, &snap.y, &snap.z] {
            let f = FieldData::new("pos", coord.clone(), Shape::D1(coord.len())).unwrap();
            let rec = run_one(&f, &cfg, true).unwrap();
            ratio_acc += rec.ratio / 3.0;
            recon.push(
                rec.reconstructed
                    .unwrap()
                    .into_iter()
                    .map(|v| v.rem_euclid(opts.box_size as f32))
                    .collect::<Vec<f32>>(),
            );
        }
        let cat =
            friends_of_friends(&recon[0], &recon[1], &recon[2], opts.box_size, b, 10).unwrap();
        let ratios = halo_count_ratio(&orig, &cat);
        let summary: Vec<String> =
            ratios.iter().map(|&(m, _, _, r)| format!("{m}:{r:.2}")).collect();
        println!(
            "{:<12} {:>7.2}x {:>8} {:>22}",
            format!("{eb}"),
            ratio_acc,
            cat.halos.len(),
            summary.join(" ")
        );
    }
    println!(
        "\nSmall halos dissolve first as the bound approaches the linking length —\n\
         the paper's Fig. 6 behaviour."
    );
}
