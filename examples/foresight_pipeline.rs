//! Full Foresight pipeline from a JSON configuration: dataset synthesis,
//! CBench sweep, distortion analysis, and a Cinema artifact database, all
//! orchestrated as PAT jobs on the simulated SLURM cluster.
//!
//! ```text
//! cargo run --release --example foresight_pipeline
//! ```

use foresight::cbench::{run_sweep, CBenchRecord, FieldData};
use foresight::codec::Shape;
use foresight::{CinemaDb, DatasetKind, ForesightConfig, Job, SlurmSim, Workflow};
use foresight_util::table::{fmt_f64, Table};
use parking_lot::Mutex;
use std::sync::Arc;

const CONFIG: &str = r#"{
  "input":       { "dataset": "nyx", "n_side": 32, "seed": 99, "steps": 6 },
  "compressors": [ { "name": "gpu-sz", "mode": "rel", "bounds": [0.001, 0.01] },
                   { "name": "cuzfp", "rates": [4, 8] } ],
  "analysis":    [ "distortion" ],
  "output":      { "dir": "results/pipeline_example", "cinema": true }
}"#;

fn main() {
    let cfg = ForesightConfig::from_json(CONFIG).expect("config");
    println!("parsed config: dataset={:?}, {} codec configs", cfg.input.dataset, cfg.codec_configs().len());

    // Stage 1 output shared between jobs.
    let fields: Arc<Mutex<Vec<FieldData>>> = Arc::new(Mutex::new(Vec::new()));
    let records: Arc<Mutex<Vec<CBenchRecord>>> = Arc::new(Mutex::new(Vec::new()));

    let mut wf = Workflow::new();
    {
        let fields = fields.clone();
        let input = cfg.input.clone();
        wf.add(Job::new("generate", 4, move || {
            let opts = cosmo_data::SynthOptions {
                n_side: input.n_side,
                box_size: input.box_size,
                seed: input.seed,
                steps: input.steps,
            };
            let out = match input.dataset {
                DatasetKind::Nyx => {
                    let snap = cosmo_data::generate_nyx(&opts)?;
                    let n = snap.n_side;
                    snap.fields()
                        .iter()
                        .map(|(name, d)| FieldData::new(*name, d.to_vec(), Shape::D3(n, n, n)))
                        .collect::<foresight_util::Result<Vec<_>>>()?
                }
                DatasetKind::Hacc => {
                    let snap = cosmo_data::generate_hacc(&opts)?;
                    snap.fields()
                        .iter()
                        .map(|(name, d)| FieldData::new(*name, d.to_vec(), Shape::D1(d.len())))
                        .collect::<foresight_util::Result<Vec<_>>>()?
                }
            };
            let n = out.len();
            *fields.lock() = out;
            Ok(format!("{n} fields"))
        }))
        .unwrap();
    }
    {
        let fields = fields.clone();
        let records = records.clone();
        let configs = cfg.codec_configs();
        wf.add(
            Job::new("cbench", 8, move || {
                let f = fields.lock();
                let recs = run_sweep(&f, &configs, false)?;
                let n = recs.len();
                *records.lock() = recs;
                Ok(format!("{n} records"))
            })
            .after("generate"),
        )
        .unwrap();
    }
    {
        let records = records.clone();
        let outdir = cfg.output.dir.clone();
        wf.add(
            Job::new("report", 1, move || {
                let recs = records.lock();
                let mut t = Table::new([
                    "field",
                    "compressor",
                    "param",
                    "ratio",
                    "bitrate",
                    "psnr_db",
                    "max_abs_err",
                ]);
                for r in recs.iter() {
                    t.push_row([
                        r.field.clone(),
                        r.compressor.display().to_string(),
                        r.param.clone(),
                        fmt_f64(r.ratio),
                        fmt_f64(r.bitrate),
                        fmt_f64(r.distortion.psnr),
                        fmt_f64(r.distortion.max_abs_err),
                    ]);
                }
                println!("\n== CBench results ==\n{}", t.to_ascii());
                let mut db = CinemaDb::create(&outdir)?;
                db.add_table("cbench.csv", &t, &[("stage", "cbench".into())])?;
                let n = db.finalize()?;
                Ok(format!("{n} artifacts in {}", outdir.display()))
            })
            .after("cbench"),
        )
        .unwrap();
    }

    let report = wf.run(&SlurmSim::default()).expect("workflow");
    println!("== PAT report ==");
    for j in &report.jobs {
        println!("wave {} | {:<10} | {:>7.2}s | {}", j.wave, j.name, j.wall_seconds, j.output);
    }
}
