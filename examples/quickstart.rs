//! Quickstart: compress a field with both codecs and inspect the metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use foresight::cbench::{run_one, FieldData};
use foresight::codec::{CodecConfig, Shape};
use lossy_sz::SzConfig;
use lossy_zfp::ZfpConfig;

fn main() {
    // A smooth-ish 3-D field, stand-in for any simulation output.
    let n = 64usize;
    let data: Vec<f32> = (0..n * n * n)
        .map(|i| {
            let x = (i % n) as f32 / n as f32;
            let y = ((i / n) % n) as f32 / n as f32;
            let z = (i / (n * n)) as f32 / n as f32;
            ((x * 6.3).sin() + (y * 4.4).cos() + z * 2.0).exp() * 10.0
        })
        .collect();
    let field = FieldData::new("demo", data, Shape::D3(n, n, n)).unwrap();

    println!("field: {} values ({} KB)\n", field.data.len(), field.data.len() * 4 / 1000);
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>12}",
        "config", "ratio", "bits/val", "PSNR (dB)", "max |err|"
    );
    for cfg in [
        CodecConfig::Sz(SzConfig::abs(1e-2)),
        CodecConfig::Sz(SzConfig::abs(1e-4)),
        CodecConfig::Sz(SzConfig::pw_rel(0.01)),
        CodecConfig::Zfp(ZfpConfig::rate(4.0)),
        CodecConfig::Zfp(ZfpConfig::rate(8.0)),
        CodecConfig::Zfp(ZfpConfig::accuracy(1e-3)),
    ] {
        let rec = run_one(&field, &cfg, false).expect("compression failed");
        println!(
            "{:<22} {:>7.2}x {:>9.3} {:>10.2} {:>12.3e}",
            format!("{} {}", rec.compressor.display(), rec.param),
            rec.ratio,
            rec.bitrate,
            rec.distortion.psnr,
            rec.distortion.max_abs_err,
        );
    }
    println!("\nNote: SZ guarantees the error bound; ZFP fixed-rate guarantees the size.");
}
