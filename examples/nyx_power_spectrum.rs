//! Nyx power-spectrum workflow: generate a synthetic Nyx snapshot,
//! compress the baryon density at several error bounds, and check the
//! paper's 1±1% pk-ratio acceptance band.
//!
//! ```text
//! cargo run --release --example nyx_power_spectrum
//! ```

use cosmo_analysis::{pk_ratio, pk_ratio_within, power_spectrum_f32};
use cosmo_data::{generate_nyx, SynthOptions};
use cosmo_fft::Grid3;
use foresight::cbench::{run_one, FieldData};
use foresight::codec::{CodecConfig, Shape};
use lossy_sz::SzConfig;

fn main() {
    let n = 64usize;
    let opts = SynthOptions { n_side: n, box_size: 256.0, seed: 20200704, steps: 8 };
    println!("simulating universe and gridding Nyx fields ({n}^3)...");
    let snap = generate_nyx(&opts).expect("synthesis");
    let grid = Grid3::cube(n);

    let field = FieldData::new(
        "baryon_density",
        snap.baryon_density.clone(),
        Shape::D3(n, n, n),
    )
    .unwrap();
    let orig_pk = power_spectrum_f32(&field.data, grid, opts.box_size, 10).unwrap();
    println!("original P(k): {} shells, P(k_min)/P(k_max) = {:.1}", orig_pk.len(), orig_pk[0].pk / orig_pk.last().unwrap().pk);

    println!(
        "\n{:<14} {:>8} {:>10} {:>16} {:>12}",
        "abs bound", "ratio", "PSNR (dB)", "worst |pk-1|", "acceptable?"
    );
    for eb in [0.1f64, 10.0, 100.0, 1000.0, 5000.0] {
        let cfg = CodecConfig::Sz(SzConfig::abs(eb));
        let rec = run_one(&field, &cfg, true).expect("cbench");
        let pk = power_spectrum_f32(rec.reconstructed.as_ref().unwrap(), grid, opts.box_size, 10)
            .unwrap();
        let ratios = pk_ratio(&orig_pk, &pk).unwrap();
        let worst = ratios.iter().map(|&(_, r)| (r - 1.0).abs()).fold(0.0f64, f64::max);
        println!(
            "{:<14} {:>7.2}x {:>10.2} {:>16.5} {:>12}",
            format!("{eb}"),
            rec.ratio,
            rec.distortion.psnr,
            worst,
            if pk_ratio_within(&ratios, 0.01) { "yes" } else { "NO" }
        );
    }
    println!(
        "\nGuideline (§V-D): among the acceptable rows, pick the largest bound —\n\
         it has the highest ratio, the least storage, and the fastest transfers."
    );
}
