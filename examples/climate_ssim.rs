//! The paper's "other domains" claim (§I): applying the same pipeline to a
//! climate-like field with the structural similarity index as the
//! domain-specific metric — "our work can also be applied to other
//! large-scale scientific simulations ... such as climate simulation with
//! structural similarity index".
//!
//! ```text
//! cargo run --release --example climate_ssim
//! ```

use cosmo_analysis::ssim::{ssim2d, SsimOptions};
use foresight::cbench::{run_one, FieldData};
use foresight::codec::{CodecConfig, Shape};
use lossy_sz::SzConfig;
use lossy_zfp::ZfpConfig;

/// A synthetic surface-temperature-like field: smooth latitudinal
/// gradient + continents-scale anomalies + weather-scale noise.
fn climate_field(nx: usize, ny: usize) -> Vec<f32> {
    (0..nx * ny)
        .map(|i| {
            let x = (i % nx) as f32 / nx as f32;
            let y = (i / nx) as f32 / ny as f32;
            let latitudinal = 288.0 - 40.0 * (y - 0.5).abs() * 2.0;
            let continental = ((x * 9.4).sin() * (y * 6.1).cos()) * 6.0;
            let weather = ((x * 83.0).sin() * (y * 97.0).cos()) * 1.5;
            latitudinal + continental + weather
        })
        .collect()
}

fn main() {
    let (nx, ny) = (256usize, 128usize);
    let data = climate_field(nx, ny);
    let field = FieldData::new("surface_temperature", data.clone(), Shape::D2(nx, ny)).unwrap();
    println!("climate-like field: {nx}x{ny}, range ~[{:.0}, {:.0}] K\n", 248.0, 296.0);

    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>12}",
        "config", "ratio", "PSNR (dB)", "SSIM", "acceptable?"
    );
    // A climate-style acceptance: SSIM >= 0.995 (stricter than the usual
    // imaging 0.95 because scientists diff these fields numerically).
    const SSIM_FLOOR: f64 = 0.995;
    for cfg in [
        CodecConfig::Sz(SzConfig::abs(0.01)),
        CodecConfig::Sz(SzConfig::abs(0.1)),
        CodecConfig::Sz(SzConfig::abs(1.0)),
        CodecConfig::Zfp(ZfpConfig::rate(8.0)),
        CodecConfig::Zfp(ZfpConfig::rate(4.0)),
        CodecConfig::Zfp(ZfpConfig::rate(2.0)),
    ] {
        let rec = run_one(&field, &cfg, true).expect("cbench");
        let s = ssim2d(
            &data,
            rec.reconstructed.as_ref().unwrap(),
            nx,
            ny,
            &SsimOptions::default(),
        )
        .unwrap();
        println!(
            "{:<24} {:>7.2}x {:>10.2} {:>10.6} {:>12}",
            format!("{} {}", rec.compressor.display(), rec.param),
            rec.ratio,
            rec.distortion.psnr,
            s,
            if s >= SSIM_FLOOR { "yes" } else { "NO" }
        );
    }
    println!(
        "\nSame guideline as the cosmology case (§V-D): among acceptable rows,\n\
         take the highest ratio. Swapping the metric is all it took — the\n\
         pipeline (CBench -> analysis -> optimizer) is domain-agnostic."
    );
}
