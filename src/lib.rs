//! Umbrella crate for the Foresight reproduction workspace.
//!
//! This root package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the functionality
//! lives in the member crates. [`prelude`] re-exports the pieces most
//! examples need.

#![forbid(unsafe_code)]

pub mod prelude;
