//! Perf-regression gate: runs the committed bench scenarios, emits a
//! schema-versioned `BENCH_<n>.json`, and compares against the previous
//! file with noise-aware tolerances.
//!
//! ```text
//! cargo run --release --bin perf-gate [-- --dir <d>]
//! ```
//!
//! Three scenarios cover the perf-critical paths:
//!
//! - **entropy** — canonical-Huffman encode/decode wall throughput of a
//!   full SZ roundtrip on a synthetic Nyx-like field, plus the exact
//!   compressed byte count;
//! - **serve** — the batched multi-device scheduler on the default
//!   synthetic workload (sim-clock makespan, p50/p95/p99, sustained
//!   GB/s, exact executed bytes);
//! - **cluster** — the healthy multi-node router on the default Zipf
//!   workload (same sim-clock metrics plus completion counts).
//!
//! Every metric carries a class that sets its comparison rule:
//!
//! - `exact` — byte counts and completion counts; any difference is a
//!   regression (the simulator is bit-deterministic, so these only move
//!   when behavior does);
//! - `model` — simulated-clock results; deterministic, but legitimate
//!   model changes move them, so only >2% in the worse direction fails;
//! - `wall` — real wall-clock throughput; noisy across machines and CI
//!   runners, so only a >3x collapse fails.
//!
//! The output file is `BENCH_<seq>.json` where `seq` is one past the
//! highest existing `BENCH_*.json` in `--dir` (default: the current
//! directory), starting at 8 — the PR that introduced the gate. The
//! newest existing file is the comparison baseline; with none, the run
//! only records.
//!
//! Exit codes: 0 ok (or first baseline), 1 regression, 2 usage/IO error.

use foresight::config::{ClusterSettings, ServeSettings};
use foresight_util::json::Value;
use foresight_util::timer::time;
use lossy_sz::{Dims, SzConfig};
use std::path::{Path, PathBuf};

/// First sequence number; `BENCH_8.json` belongs to the PR that
/// introduced the gate.
const BASE_SEQ: u64 = 8;
const SCHEMA: u64 = 1;
/// Scenario seed (shared; each scenario derives its workload from it).
const SEED: u64 = 0;

struct Metric {
    name: &'static str,
    value: f64,
    /// "exact" | "model" | "wall"
    class: &'static str,
    /// "higher" | "lower" — which direction is better.
    better: &'static str,
}

struct Scenario {
    name: &'static str,
    metrics: Vec<Metric>,
}

fn main() {
    let mut dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                let Some(d) = args.next() else { usage_exit() };
                dir = PathBuf::from(d);
            }
            _ => usage_exit(),
        }
    }
    let scenarios = match run_scenarios() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf-gate: scenario failed: {e}");
            std::process::exit(2);
        }
    };
    let previous = newest_bench(&dir);
    let seq = previous.as_ref().map(|(s, _)| s + 1).unwrap_or(BASE_SEQ);
    let doc = to_doc(seq, &scenarios);
    let out = dir.join(format!("BENCH_{seq}.json"));
    if let Err(e) = std::fs::write(&out, doc.to_json()) {
        eprintln!("perf-gate: cannot write '{}': {e}", out.display());
        std::process::exit(2);
    }
    println!("perf-gate: wrote {}", out.display());
    for s in &scenarios {
        for m in &s.metrics {
            println!("  {}.{} = {} [{}]", s.name, m.name, m.value, m.class);
        }
    }
    let Some((prev_seq, prev_doc)) = previous else {
        println!("perf-gate: no previous BENCH_*.json — baseline recorded, nothing to compare");
        std::process::exit(0);
    };
    let regressions = compare(&prev_doc, &scenarios);
    if regressions.is_empty() {
        println!("perf-gate: OK against BENCH_{prev_seq}.json (no regressions)");
        std::process::exit(0);
    }
    eprintln!("perf-gate: {} regression(s) against BENCH_{prev_seq}.json:", regressions.len());
    for r in &regressions {
        eprintln!("  {r}");
    }
    std::process::exit(1);
}

fn usage_exit() -> ! {
    eprintln!("usage: perf-gate [--dir <d>]");
    std::process::exit(2);
}

/// The newest `BENCH_<n>.json` in `dir`, if any parses.
fn newest_bench(dir: &Path) -> Option<(u64, Value)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let seq: u64 = match name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")) {
            Some(s) => match s.parse() {
                Ok(n) => n,
                Err(_) => continue,
            },
            None => continue,
        };
        if best.as_ref().map(|(b, _)| seq > *b).unwrap_or(true) {
            best = Some((seq, entry.path()));
        }
    }
    let (seq, path) = best?;
    let text = std::fs::read_to_string(path).ok()?;
    Some((seq, Value::parse(&text).ok()?))
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn run_scenarios() -> foresight_util::Result<Vec<Scenario>> {
    Ok(vec![entropy_scenario()?, serve_scenario()?, cluster_scenario()?])
}

/// Best-of-3 wall seconds (first run also warms caches).
fn best_secs<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (_, secs) = time(|| std::hint::black_box(f()));
        best = best.min(secs);
    }
    best
}

/// Full SZ roundtrip (Lorenzo + canonical Huffman) on a deterministic
/// smooth field — the entropy stage dominates, which is what the
/// fused-kernel roadmap work targets.
fn entropy_scenario() -> foresight_util::Result<Scenario> {
    const N: usize = 64;
    let data: Vec<f32> = (0..N * N * N)
        .map(|i| {
            let x = (i % N) as f32;
            let y = ((i / N) % N) as f32;
            let z = (i / (N * N)) as f32;
            (0.13 * x).sin() + (0.07 * y).cos() + (0.11 * z).sin()
        })
        .collect();
    let dims = Dims::D3(N, N, N);
    let cfg = SzConfig::abs(1e-3);
    let stream = lossy_sz::compress(&data, dims, &cfg)?;
    let volume_mb = (data.len() * 4) as f64 / 1e6;
    let enc_s = best_secs(|| lossy_sz::compress(&data, dims, &cfg).expect("compress"));
    let dec_s = best_secs(|| lossy_sz::decompress(&stream).expect("decompress"));
    Ok(Scenario {
        name: "entropy",
        metrics: vec![
            Metric {
                name: "encode_mbs",
                value: volume_mb / enc_s,
                class: "wall",
                better: "higher",
            },
            Metric {
                name: "decode_mbs",
                value: volume_mb / dec_s,
                class: "wall",
                better: "higher",
            },
            Metric {
                name: "compressed_bytes",
                value: stream.len() as f64,
                class: "exact",
                better: "lower",
            },
        ],
    })
}

fn latency_metrics(
    summary: Option<&foresight_util::telemetry::HistogramSummary>,
    out: &mut Vec<Metric>,
) {
    let s = |f: fn(&foresight_util::telemetry::HistogramSummary) -> f64| {
        summary.map(f).unwrap_or(0.0) * 1e3
    };
    out.push(Metric { name: "p50_ms", value: s(|l| l.p50), class: "model", better: "lower" });
    out.push(Metric { name: "p95_ms", value: s(|l| l.p95), class: "model", better: "lower" });
    out.push(Metric { name: "p99_ms", value: s(|l| l.p99), class: "model", better: "lower" });
}

/// The batched serving scheduler on its default synthetic workload.
fn serve_scenario() -> foresight_util::Result<Scenario> {
    let settings = ServeSettings::default();
    let node = settings.to_node();
    let opts = settings.to_serve_options(gpu_sim::FaultRates::default());
    let mut wl = settings.to_workload_spec();
    wl.seed = SEED;
    let reqs = foresight::synth_workload(&wl)?;
    let report = foresight::serve(&node, &opts, &reqs)?;
    let mut metrics = vec![
        Metric { name: "makespan_s", value: report.makespan_s, class: "model", better: "lower" },
        Metric {
            name: "sustained_gbs",
            value: report.sustained_gbs,
            class: "model",
            better: "higher",
        },
        Metric {
            name: "executed_bytes",
            value: report.executed_bytes as f64,
            class: "exact",
            better: "lower",
        },
    ];
    latency_metrics(report.latency(), &mut metrics);
    Ok(Scenario { name: "serve", metrics })
}

/// The healthy multi-node router on its default Zipf workload.
fn cluster_scenario() -> foresight_util::Result<Scenario> {
    let settings = ClusterSettings::default();
    let spec = settings.to_cluster();
    let opts = foresight::ClusterOptions {
        chaos: gpu_sim::NodeChaosPlan::quiet(),
        ..settings.to_cluster_options()?
    };
    let mut wl = settings.to_workload_spec();
    wl.seed = SEED;
    let reqs = foresight::cluster_workload(&wl)?;
    let report = foresight::serve_cluster(&spec, &opts, &reqs)?;
    let mut metrics = vec![
        Metric { name: "makespan_s", value: report.makespan_s, class: "model", better: "lower" },
        Metric {
            name: "sustained_gbs",
            value: report.sustained_gbs,
            class: "model",
            better: "higher",
        },
        Metric {
            name: "completed",
            value: report.completed as f64,
            class: "exact",
            better: "higher",
        },
    ];
    latency_metrics(report.latency(), &mut metrics);
    Ok(Scenario { name: "cluster", metrics })
}

fn to_doc(seq: u64, scenarios: &[Scenario]) -> Value {
    let scen = scenarios
        .iter()
        .map(|s| {
            let metrics = s
                .metrics
                .iter()
                .map(|m| {
                    (
                        m.name.to_string(),
                        Value::Object(vec![
                            ("value".into(), Value::Number(m.value)),
                            ("class".into(), Value::String(m.class.into())),
                            ("better".into(), Value::String(m.better.into())),
                        ]),
                    )
                })
                .collect();
            (
                s.name.to_string(),
                Value::Object(vec![("metrics".into(), Value::Object(metrics))]),
            )
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::Number(SCHEMA as f64)),
        ("seq".into(), Value::Number(seq as f64)),
        ("git_rev".into(), Value::String(git_rev())),
        ("seed".into(), Value::Number(SEED as f64)),
        ("scenarios".into(), Value::Object(scen)),
    ])
}

/// Compares current metrics against a previous document; returns one
/// line per regression. Metrics absent on either side are skipped (the
/// schema is allowed to grow).
fn compare(prev: &Value, scenarios: &[Scenario]) -> Vec<String> {
    let mut out = Vec::new();
    if prev.get("schema").and_then(Value::as_u64) != Some(SCHEMA) {
        // An unknown schema can't be compared meaningfully; treat as a
        // fresh baseline rather than failing CI on the format change.
        return out;
    }
    for s in scenarios {
        for m in &s.metrics {
            let Some(old) = prev
                .get("scenarios")
                .and_then(|v| v.get(s.name))
                .and_then(|v| v.get("metrics"))
                .and_then(|v| v.get(m.name))
                .and_then(|v| v.get("value"))
                .and_then(Value::as_f64)
            else {
                continue;
            };
            let worse = m.better == "lower";
            let regressed = match m.class {
                "exact" => m.value != old,
                // Deterministic sim-clock values: >2% in the worse
                // direction means the model got slower, not noisier.
                "model" => {
                    if worse {
                        m.value > old * 1.02
                    } else {
                        m.value < old * 0.98
                    }
                }
                // Wall-clock throughput: machine- and load-dependent, so
                // only a collapse (3x) fails the gate.
                _ => {
                    if worse {
                        m.value > old * 3.0
                    } else {
                        m.value < old / 3.0
                    }
                }
            };
            if regressed {
                out.push(format!(
                    "{}.{} [{}]: {} -> {} (worse)",
                    s.name, m.name, m.class, old, m.value
                ));
            }
        }
    }
    out
}
