//! Convenience re-exports for examples and integration tests.

pub use cosmo_analysis as analysis;
pub use cosmo_data as data;
pub use cosmo_fft as fft;
pub use foresight as framework;
pub use gpu_sim as gpu;
pub use lossless_fp as lossless;
pub use lossy_sz as sz;
pub use lossy_zfp as zfp;
pub use nbody_sim as nbody;
